//! Plan execution on the simulated device.
//!
//! Two modes reproduce the paper's two experimental setups:
//!
//! * [`ExecMode::Resident`] — small inputs (Section 5.1.2): every base
//!   relation is transferred to the GPU once, intermediates live in device
//!   global memory, final results return to the host at the end.
//! * [`ExecMode::Staged`] — large inputs (Section 5.1.3): "every operator
//!   has to move its result data back to host to make room for the next
//!   operator": each step transfers its inputs host→device and its results
//!   device→host, then frees everything. Fused operators transfer only
//!   their external inputs and outputs — the PCIe saving of Figure 21.
//!
//! Staged transfers are issued on dedicated H2D/D2H copy streams (the same
//! double-buffering machinery `execute_chunked` uses), so a step's result
//! download overlaps the next step's computation and stage-in uploads hide
//! under earlier kernels. Data dependences are kept honest with events: a
//! kernel synchronizes on its inputs' upload events before it is charged,
//! and a re-staged upload waits on the download that produced the bytes.
//! [`PlanReport::serialized_seconds`] still reports the fully serialized
//! cost (the paper's Figure 21 "overall" metric); the overlap shows up in
//! [`PlanReport::total_seconds`] / [`PlanReport::pipelined_seconds`].
//!
//! Each streaming operator acquires a gather scratch buffer alongside its
//! final outputs (compute writes scratch, gather densifies), matching the
//! allocation behaviour behind Figure 17.
//!
//! # The scratch arena
//!
//! Every buffer a run needs — input stage-ins, staged re-stages, gather
//! scratch, results — is a sub-allocation of one upfront [`ScratchArena`]
//! reservation sized by the admission predictor's replay of this
//! executor's exact acquire/release schedule
//! (`admission::predict_reservation`). The reservation *is* the predicted
//! peak: one `Alloc` span up front, one `Free` span at the end, O(1) per
//! plan regardless of step or chunk count, and a fresh device's
//! [`kw_gpu_sim::MemoryTracker::peak`] equals the admission report's peak
//! bit-exactly by construction. A sub-allocation that exceeds the
//! reservation means the row estimates under-shot (duplicate-heavy joins
//! are the one under-estimating case); [`ArenaPolicy`] decides whether
//! that spills to a real device allocation (counted in
//! `kw_arena_spills_total`) or fails with the typed
//! [`kw_gpu_sim::SimError::ArenaOverflow`] for the resilient ladder.

use std::collections::BTreeMap;

use kw_gpu_sim::{
    ArenaSlice, ArenaStats, BufferId, Device, Direction, EventId, ScratchArena, SimError, SimStats,
};
use kw_kernel_ir::execute as execute_op;
use kw_relational::Relation;

use crate::{
    compile, CompiledPlan, NodeId, PlanNode, QueryPlan, Result, WeaverConfig, WeaverError,
};

/// Where intermediate results live between operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Inputs fit on the GPU; transfer once (the Figure 16 setup).
    #[default]
    Resident,
    /// Inputs exceed GPU memory; stage every operator over PCIe (the
    /// Figure 21 setup).
    Staged,
}

/// What the executor does when a sub-allocation exceeds the scratch-arena
/// reservation — i.e. when the admission row estimates under-predicted the
/// true footprint (join outputs beyond `max(|L|, |R|)` rows are the one
/// under-estimating case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArenaPolicy {
    /// Fall back to a real per-buffer device allocation for the oversized
    /// request. Each spill emits its own alloc/free spans and increments
    /// `kw_arena_spills_total`, so mispredictions stay loud in the trace
    /// and metrics while the query still completes.
    #[default]
    Spill,
    /// Propagate the typed [`kw_gpu_sim::SimError::ArenaOverflow`]. The
    /// overflow is a capacity error, so under the resilient driver it
    /// drops the run one ladder rung instead of silently OOMing mid-plan.
    Strict,
}

/// The result of executing a plan.
#[derive(Debug)]
pub struct PlanReport {
    /// Relations of the marked plan outputs.
    pub outputs: BTreeMap<NodeId, Relation>,
    /// GPU computation time, seconds.
    pub gpu_seconds: f64,
    /// PCIe transfer time, seconds.
    pub pcie_seconds: f64,
    /// End-to-end time, seconds. For streamed executions (staged mode and
    /// the resilient driver's chunked rung) this is the overlap-aware
    /// wallclock from the stream/event graph; compare with
    /// [`PlanReport::serialized_seconds`] for the no-overlap cost.
    pub total_seconds: f64,
    /// End-to-end seconds with every transfer serialized against compute —
    /// what the same schedule would cost without copy/compute overlap.
    /// Equals [`PlanReport::total_seconds`] for non-streamed (Resident)
    /// executions, where nothing overlaps.
    pub serialized_seconds: f64,
    /// Overlap-aware wallclock of this run from the device-level
    /// stream/event graph, `Some` only when the run was streamed (staged
    /// mode, or the resilient driver's chunked rung). Excludes retry
    /// backoff; `None` means nothing was overlapped.
    pub pipelined_seconds: Option<f64>,
    /// Raw simulator counters.
    pub stats: SimStats,
    /// Peak bytes of live relation data this run actually held at once
    /// (Figure 17): arena sub-allocations plus spills plus whatever was
    /// already resident when the run started. The arena *reservation*
    /// (= the admission prediction) is an upper envelope of this and is
    /// reported separately in [`PlanReport::arena`].
    pub peak_device_bytes: u64,
    /// The fusion sets the compiler chose.
    pub fusion_sets: Vec<Vec<NodeId>>,
    /// Number of (possibly fused) operators executed.
    pub operator_count: usize,
    /// How the resilient driver got here (mode chosen, retries, faults
    /// survived, degradations). `None` for direct executor calls.
    pub resilience: Option<crate::resilient::ResilienceReport>,
    /// Scratch-arena accounting for this run: the upfront reservation, the
    /// high-water mark actually reached (`high_water <= reservation`
    /// always), sub-allocations served span-free, and resets (one per
    /// chunk iteration in out-of-core runs).
    pub arena: Option<ArenaStats>,
    /// Count of free errors the device swallowed on drain-on-error paths
    /// (`kw_free_errors_total`). Like [`PlanReport::stats`] this is a
    /// device-lifetime counter; non-zero means some unwind hit accounting
    /// corruption worth investigating.
    pub free_errors: u64,
    /// The first swallowed free error on the device, if any.
    pub first_free_error: Option<String>,
    /// Structured execution trace: one span per kernel launch, PCIe
    /// transfer, allocation and fault, with operator provenance and a
    /// per-span [`SimStats`] delta. A snapshot of the device's span log at
    /// report time, so like [`PlanReport::stats`] it is cumulative over the
    /// device's life; for a fresh device the two reconcile exactly (see
    /// [`kw_gpu_sim::reconcile`]).
    pub spans: Vec<kw_gpu_sim::Span>,
    /// Roofline-style bottleneck attribution for this run: achieved vs.
    /// peak bandwidths, busy fractions, launch share and a per-operator
    /// breakdown (see [`crate::ProfileReport`]).
    pub profile: crate::ProfileReport,
}

impl PlanReport {
    /// End-to-end time under transfer/compute overlap (the double-buffering
    /// technique the paper's related work cites as orthogonal to kernel
    /// fusion).
    ///
    /// When the run was actually streamed this is the *measured*
    /// [`PlanReport::pipelined_seconds`] from the device's stream/event
    /// graph. Otherwise it falls back to the closed-form estimate of
    /// *perfect* overlap — the longer of the two engines bounds the
    /// runtime, `max(gpu, pcie)` — which the measured value can exceed
    /// (data dependences keep real schedules from overlapping perfectly)
    /// but never beat.
    pub fn overlapped_seconds(&self) -> f64 {
        self.pipelined_seconds
            .unwrap_or_else(|| self.gpu_seconds.max(self.pcie_seconds))
    }
}

/// Compile and execute `plan` over the named input `bindings` on `device`.
///
/// Use a fresh [`Device`] per run when comparing configurations: statistics
/// and the allocation high-water mark accumulate on the device.
///
/// # Errors
///
/// Returns [`WeaverError`] for compilation failures, missing or mis-typed
/// bindings, and device errors.
///
/// # Examples
///
/// ```
/// use kw_core::{execute_plan, QueryPlan, WeaverConfig};
/// use kw_gpu_sim::{Device, DeviceConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{gen, CmpOp, Predicate, Value, Schema};
///
/// let input = gen::micro_input(1000, 1);
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", input.schema().clone());
/// let s = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1 << 30)) },
///     &[t],
/// )?;
/// plan.mark_output(s);
///
/// let mut device = Device::new(DeviceConfig::fermi_c2050());
/// let report = execute_plan(&plan, &[("t", &input)], &mut device, &WeaverConfig::default())?;
/// assert!(report.gpu_seconds > 0.0);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn execute_plan(
    plan: &QueryPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
) -> Result<PlanReport> {
    let compiled = compile(plan, config)?;
    execute_compiled(plan, &compiled, bindings, device, config)
}

/// Execute an already-compiled plan (lets callers inspect or reuse the
/// compilation).
///
/// Sizes the scratch-arena reservation with the admission predictor's
/// replay for [`WeaverConfig::mode`] — the same number [`crate::admit`]
/// reports as `resident_peak` / `staged_peak`.
///
/// # Errors
///
/// Same conditions as [`execute_plan`].
pub fn execute_compiled(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
) -> Result<PlanReport> {
    let reservation = crate::admission::predict_reservation(plan, compiled, bindings, config.mode)?;
    execute_compiled_sized(plan, compiled, bindings, device, config, reservation)
}

/// [`execute_compiled`] with an explicit arena reservation — for callers
/// (the resilient driver, the batch scheduler) that already hold the
/// admission peak and must guarantee the reservation equals it bit-exactly.
pub(crate) fn execute_compiled_sized(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    reservation: u64,
) -> Result<PlanReport> {
    // Bytes already resident before this run (a batch wave's other working
    // sets): part of the true footprint but not of this arena.
    let base_in_use = device.memory().in_use();
    let mut arena = device.create_arena(reservation, "plan.arena")?;
    let mut live = LiveBuffers::default();
    let scope_depth = device.scope_depth();
    let result = run_compiled(
        plan,
        compiled,
        bindings,
        device,
        config,
        &mut arena,
        &mut live,
        base_in_use,
    );
    match result {
        Ok(mut report) => {
            report.arena = Some(device.release_arena(arena)?);
            // Refresh the span snapshot so it includes the arena's Free span.
            report.spans = device.spans().to_vec();
            Ok(report)
        }
        Err(e) => {
            // Cleanup guard: any early error return would otherwise leak
            // the arena and its spills, leaving the device unusable for a
            // retry or a degraded re-execution. Unwind any provenance
            // scopes the failed run left pushed and drain in-flight
            // streamed staging so the retry's clock starts from a settled
            // makespan. Arena slices need no individual release — the
            // backing reservation goes back in one piece — and free errors
            // during unwind are counted on the device, not propagated: the
            // original error is the one worth reporting.
            device.truncate_scope(scope_depth);
            device.sync_streams();
            for slot in live.drain() {
                if let Slot::Spill(buf, _) = slot {
                    if let Err(fe) = device.free(buf) {
                        device.note_free_error(&fe);
                    }
                }
            }
            if let Err(fe) = device.release_arena(arena) {
                device.note_free_error(&fe);
            }
            Err(e)
        }
    }
}

/// Execute a compiled plan inside a caller-owned arena. The chunked driver
/// reserves one arena for a whole out-of-core run and calls this per chunk
/// with a [`ScratchArena::reset`] in between, so the alloc/free span count
/// stays O(1) for the entire run, not O(chunks).
///
/// The arena is NOT created or released here; on error it is reset (and
/// spills freed) so the caller can retry or unwind with clean accounting.
pub(crate) fn execute_compiled_in_arena(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    arena: &mut ScratchArena,
) -> Result<PlanReport> {
    // The backing reservation is already charged to the device tracker;
    // subtract it so the footprint baseline counts only foreign bytes.
    let base_in_use = device.memory().in_use().saturating_sub(arena.reservation());
    let mut live = LiveBuffers::default();
    let scope_depth = device.scope_depth();
    let result = run_compiled(
        plan,
        compiled,
        bindings,
        device,
        config,
        arena,
        &mut live,
        base_in_use,
    );
    match result {
        Ok(mut report) => {
            report.arena = Some(arena.stats());
            Ok(report)
        }
        Err(e) => {
            device.truncate_scope(scope_depth);
            device.sync_streams();
            for slot in live.drain() {
                if let Slot::Spill(buf, _) = slot {
                    if let Err(fe) = device.free(buf) {
                        device.note_free_error(&fe);
                    }
                }
            }
            arena.reset();
            Err(e)
        }
    }
}

/// One live buffer of an in-flight execution: a span-free arena slice, or
/// a real device allocation the arena could not hold (an admission
/// under-prediction running under [`ArenaPolicy::Spill`], with its byte
/// size retained for footprint accounting).
#[derive(Debug, Clone, Copy)]
enum Slot {
    Arena(ArenaSlice),
    Spill(BufferId, u64),
}

/// Device buffers currently owned by an in-flight execution: the per-node
/// buffer map plus the transient gather-scratch acquisition.
#[derive(Default)]
struct LiveBuffers {
    by_node: BTreeMap<NodeId, Slot>,
    scratch: Option<Slot>,
}

impl LiveBuffers {
    fn drain(&mut self) -> impl Iterator<Item = Slot> {
        let by_node = std::mem::take(&mut self.by_node);
        by_node.into_values().chain(self.scratch.take())
    }
}

/// Running footprint accounting for one execution: bytes resident before
/// the run started, live spill bytes, and the high-water mark of
/// `base + arena.in_use() + spills` — the run's true Figure 17 peak, which
/// the reservation envelope only bounds from above.
struct Footprint {
    base_in_use: u64,
    spill_in_use: u64,
    actual_peak: u64,
}

impl Footprint {
    fn new(base_in_use: u64) -> Footprint {
        Footprint {
            base_in_use,
            spill_in_use: 0,
            actual_peak: base_in_use,
        }
    }

    fn note(&mut self, arena: &ScratchArena) {
        self.actual_peak = self
            .actual_peak
            .max(self.base_in_use + arena.in_use() + self.spill_in_use);
    }
}

/// Sub-allocate `bytes` from the arena, spilling to a real device
/// allocation under [`ArenaPolicy::Spill`] when the reservation is
/// exhausted (`kw_arena_spills_total` counts every such misprediction).
fn acquire_slot(
    device: &mut Device,
    arena: &mut ScratchArena,
    fp: &mut Footprint,
    policy: ArenaPolicy,
    bytes: u64,
    label: impl FnOnce() -> String,
) -> Result<Slot> {
    match arena.acquire(bytes) {
        Ok(slice) => {
            fp.note(arena);
            Ok(Slot::Arena(slice))
        }
        Err(e @ SimError::ArenaOverflow { .. }) => {
            if policy == ArenaPolicy::Strict {
                return Err(e.into());
            }
            let buf = device.alloc(bytes, label())?;
            device.metrics_mut().inc("kw_arena_spills_total", 1);
            fp.spill_in_use += bytes;
            fp.note(arena);
            Ok(Slot::Spill(buf, bytes))
        }
        Err(e) => Err(e.into()),
    }
}

/// Return a slot to wherever it came from.
fn release_slot(
    device: &mut Device,
    arena: &mut ScratchArena,
    fp: &mut Footprint,
    slot: Slot,
) -> Result<()> {
    match slot {
        Slot::Arena(slice) => arena.release(slice)?,
        Slot::Spill(buf, bytes) => {
            device.free(buf)?;
            fp.spill_in_use -= bytes;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_compiled(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    arena: &mut ScratchArena,
    live: &mut LiveBuffers,
    base_in_use: u64,
) -> Result<PlanReport> {
    // Resolve input nodes to bound relations.
    let mut values: BTreeMap<NodeId, Relation> = BTreeMap::new();
    for id in plan.node_ids() {
        if let PlanNode::Input { name, schema } = plan.node(id) {
            let bound = bindings
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| *r)
                .ok_or_else(|| WeaverError::binding(format!("no relation bound to '{name}'")))?;
            if bound.schema() != schema {
                return Err(WeaverError::binding(format!(
                    "relation bound to '{name}' has schema {}, expected {schema}",
                    bound.schema()
                )));
            }
            values.insert(id, bound.clone());
        }
    }

    // How many steps consume each node, plus one virtual consumer for plan
    // outputs (kept on device until the final transfer in resident mode).
    // MUST mirror `admission::buffer_refcounts`: the predictor replays this
    // exact schedule to size the arena reservation.
    let mut refcount: BTreeMap<NodeId, usize> = BTreeMap::new();
    for step in &compiled.steps {
        let mut seen = Vec::new();
        for &i in &step.inputs {
            if !seen.contains(&i) {
                seen.push(i);
                *refcount.entry(i).or_insert(0) += 1;
            }
        }
    }
    for &o in plan.outputs() {
        *refcount.entry(o).or_insert(0) += 1;
    }

    let mut fp = Footprint::new(base_in_use);

    // Staged mode issues its transfers on dedicated copy streams so the
    // stream scheduler — not a side formula — decides how much traffic
    // hides behind compute. Upload events gate the kernels that consume
    // them; download events gate re-staged uploads of the same bytes.
    let staged = config.mode == ExecMode::Staged;
    let start_cycles = device.sync_streams();
    let copy_streams = staged.then(|| (device.create_stream(), device.create_stream()));
    let mut upload_done: BTreeMap<NodeId, EventId> = BTreeMap::new();
    let mut download_done: BTreeMap<NodeId, EventId> = BTreeMap::new();

    // Upload every referenced base relation once (both modes: the paper's
    // staged experiment streams operator *results* back to the host; base
    // relations are transferred when first needed and shared inputs are not
    // re-sent, which is why pattern (d) sees no PCIe benefit).
    device.push_scope("stage-in");
    for id in plan.node_ids() {
        if matches!(plan.node(id), PlanNode::Input { .. })
            && refcount.get(&id).copied().unwrap_or(0) > 0
        {
            let rel = &values[&id];
            let bytes = rel.byte_size() as u64;
            let slot = acquire_slot(device, arena, &mut fp, config.arena, bytes, || {
                format!("input.{id}")
            })?;
            live.by_node.insert(id, slot);
            if let Some((h2d, _)) = copy_streams {
                device.transfer_on(h2d, Direction::HostToDevice, bytes)?;
                upload_done.insert(id, device.record_event(h2d)?);
            } else {
                device.transfer(Direction::HostToDevice, bytes)?;
            }
        }
    }
    device.pop_scope();

    for (step_idx, step) in compiled.steps.iter().enumerate() {
        // Every span this step emits (kernels, staging transfers, faults)
        // carries the operator's provenance. Fused steps keep their
        // `fused[...]` label, so fusion candidates stay identifiable in the
        // trace.
        device.push_scope(format!("step{step_idx}:{}", step.op.label));
        // Staged mode: intermediates were sent back to the host after the
        // step that produced them; re-stage the ones this step consumes.
        if let Some((h2d, _)) = copy_streams {
            for &i in &step.inputs {
                if let std::collections::btree_map::Entry::Vacant(slot) = live.by_node.entry(i) {
                    let rel = values.get(&i).ok_or_else(|| {
                        WeaverError::plan(format!("step input {i} not yet computed"))
                    })?;
                    let bytes = rel.byte_size() as u64;
                    let s = acquire_slot(device, arena, &mut fp, config.arena, bytes, || {
                        format!("staged.{i}")
                    })?;
                    slot.insert(s);
                    // The bytes being re-staged come off the download that
                    // returned them to the host — the upload cannot start
                    // before that download has finished.
                    if let Some(&ev) = download_done.get(&i) {
                        device.wait_event(h2d, ev)?;
                    }
                    device.transfer_on(h2d, Direction::HostToDevice, bytes)?;
                    upload_done.insert(i, device.record_event(h2d)?);
                }
            }
            // Data-ready edge: the serially-charged kernels below consume
            // these uploads, so they cannot be charged before the copy
            // engine has delivered the bytes.
            for &i in &step.inputs {
                if let Some(&ev) = upload_done.get(&i) {
                    device.sync_event(ev)?;
                }
            }
        }

        // Execute the operator over the real relations.
        let input_rels: Vec<&Relation> = step
            .inputs
            .iter()
            .map(|i| {
                values
                    .get(i)
                    .ok_or_else(|| WeaverError::plan(format!("step input {i} not computed")))
            })
            .collect::<Result<_>>()?;
        let result = execute_op(&step.op, &input_rels, device, config.opt)?;

        // Acquire gather scratch + final output buffers.
        let out_bytes: u64 = result.outputs.iter().map(|r| r.byte_size() as u64).sum();
        let scratch = acquire_slot(device, arena, &mut fp, config.arena, out_bytes, || {
            format!("{}.scratch", step.op.label)
        })?;
        live.scratch = Some(scratch);
        for (rel, &node) in result.outputs.iter().zip(&step.outputs) {
            let bytes = rel.byte_size() as u64;
            let slot = acquire_slot(device, arena, &mut fp, config.arena, bytes, || {
                format!("result.{node}")
            })?;
            live.by_node.insert(node, slot);
        }
        live.scratch = None;
        release_slot(device, arena, &mut fp, scratch)?;

        for (rel, &node) in result.outputs.into_iter().zip(&step.outputs) {
            values.insert(node, rel);
        }

        // Release inputs nobody else needs (base relations and, in resident
        // mode, intermediates).
        let mut seen = Vec::new();
        for &i in &step.inputs {
            if seen.contains(&i) {
                continue;
            }
            seen.push(i);
            let rc = refcount.get_mut(&i).expect("counted above");
            *rc -= 1;
            let intermediate = !matches!(plan.node(i), PlanNode::Input { .. });
            let release = *rc == 0 || (config.mode == ExecMode::Staged && intermediate);
            if release {
                if let Some(slot) = live.by_node.remove(&i) {
                    release_slot(device, arena, &mut fp, slot)?;
                }
            }
        }

        // Staged mode: results return to the host immediately to make room
        // for the next operator. The download is issued on the D2H copy
        // stream — its `not_before` floor is the serial clock, which the
        // producing kernels just advanced, so it cannot predate the data;
        // it then overlaps the *next* step's computation. The device buffer
        // is released at issue time (the memory model is not time-aware),
        // matching the serialized accounting exactly.
        if let Some((_, d2h)) = copy_streams {
            for &node in &step.outputs {
                let bytes = values[&node].byte_size() as u64;
                device.transfer_on(d2h, Direction::DeviceToHost, bytes)?;
                download_done.insert(node, device.record_event(d2h)?);
                if let Some(slot) = live.by_node.remove(&node) {
                    release_slot(device, arena, &mut fp, slot)?;
                }
            }
        }
        device.pop_scope();
    }

    // Resident mode: download marked outputs. Then release whatever remains.
    if config.mode == ExecMode::Resident {
        device.push_scope("stage-out");
        for &o in plan.outputs() {
            let bytes = values
                .get(&o)
                .map(|r| r.byte_size() as u64)
                .ok_or_else(|| {
                    WeaverError::plan(format!("plan output {o} was never computed by any step"))
                })?;
            device.transfer(Direction::DeviceToHost, bytes)?;
        }
        device.pop_scope();
    }
    let ids: Vec<NodeId> = live.by_node.keys().copied().collect();
    for id in ids {
        let slot = live.by_node.remove(&id).expect("key exists");
        release_slot(device, arena, &mut fp, slot)?;
    }

    let outputs: BTreeMap<NodeId, Relation> = plan
        .outputs()
        .iter()
        .map(|&o| {
            values.get(&o).cloned().map(|r| (o, r)).ok_or_else(|| {
                WeaverError::plan(format!("plan output {o} was never computed by any step"))
            })
        })
        .collect::<Result<_>>()?;

    // Settle the clock and read the wallclock. For a streamed (staged) run
    // the overlap-aware total comes from the event graph's makespan on the
    // unified cycle clock; the serialized cost is the sum of every charge,
    // exactly what the pre-stream staged executor reported. The `max` guard
    // absorbs sub-cycle rounding (each streamed transfer's duration rounds
    // to whole cycles) so `serialized >= total` can never invert.
    let end_cycles = device.sync_streams();
    let (total_seconds, serialized_seconds, pipelined_seconds) = if staged {
        let total = device.config().cycles_to_seconds(end_cycles);
        let pipelined = device.config().cycles_to_seconds(end_cycles - start_cycles);
        (total, device.total_seconds().max(total), Some(pipelined))
    } else {
        (device.total_seconds(), device.total_seconds(), None)
    };

    device.metrics_mut().inc("kw_plans_executed_total", 1);
    device
        .metrics_mut()
        .inc("kw_steps_executed_total", compiled.steps.len() as u64);
    let mut profile = crate::ProfileReport::from_spans(
        device.spans(),
        device.stats(),
        device.config(),
        total_seconds,
    );
    profile.peak_device_bytes = device.memory().peak();

    Ok(PlanReport {
        outputs,
        gpu_seconds: device.gpu_seconds(),
        pcie_seconds: device.pcie_secs(),
        total_seconds,
        serialized_seconds,
        pipelined_seconds,
        stats: *device.stats(),
        peak_device_bytes: fp.actual_peak,
        fusion_sets: compiled.fusion_sets.clone(),
        operator_count: compiled.steps.len(),
        resilience: None,
        arena: None, // filled by the entry points once the arena settles
        free_errors: device.metrics().counter("kw_free_errors_total"),
        first_free_error: device.first_free_error().map(String::from),
        spans: device.spans().to_vec(),
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_gpu_sim::{DeviceConfig, SpanKind};
    use kw_primitives::RaOp;
    use kw_relational::{gen, ops, CmpOp, Predicate, Value};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    fn sel(attr: usize, v: u32) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(v)),
        }
    }

    fn select_chain_plan(schema: kw_relational::Schema) -> (QueryPlan, NodeId) {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", schema);
        let a = p.add_op(sel(0, u32::MAX / 2), &[t]).unwrap();
        let b = p.add_op(sel(1, u32::MAX / 2), &[a]).unwrap();
        let c = p.add_op(sel(2, u32::MAX / 2), &[b]).unwrap();
        p.mark_output(c);
        (p, c)
    }

    #[test]
    fn fused_and_unfused_agree_with_oracle() {
        let input = gen::micro_input(20_000, 1);
        let (plan, out) = select_chain_plan(input.schema().clone());

        let p1 = Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2));
        let p2 = Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2));
        let p3 = Predicate::cmp(2, CmpOp::Lt, Value::U32(u32::MAX / 2));
        let oracle = ops::select(
            &ops::select(&ops::select(&input, &p1).unwrap(), &p2).unwrap(),
            &p3,
        )
        .unwrap();

        let mut d1 = device();
        let fused =
            execute_plan(&plan, &[("t", &input)], &mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = execute_plan(
            &plan,
            &[("t", &input)],
            &mut d2,
            &WeaverConfig::default().baseline(),
        )
        .unwrap();

        assert_eq!(fused.outputs[&out], oracle);
        assert_eq!(base.outputs[&out], oracle);
    }

    #[test]
    fn fusion_is_faster_and_smaller() {
        let input = gen::micro_input(50_000, 2);
        let (plan, _) = select_chain_plan(input.schema().clone());

        let mut d1 = device();
        let fused =
            execute_plan(&plan, &[("t", &input)], &mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = execute_plan(
            &plan,
            &[("t", &input)],
            &mut d2,
            &WeaverConfig::default().baseline(),
        )
        .unwrap();

        assert!(
            base.gpu_seconds > 1.5 * fused.gpu_seconds,
            "fusion speedup too small: {} vs {}",
            base.gpu_seconds,
            fused.gpu_seconds
        );
        assert!(base.peak_device_bytes > fused.peak_device_bytes);
        assert!(base.stats.kernel_launches > fused.stats.kernel_launches);
        assert_eq!(fused.operator_count, 1);
        assert_eq!(base.operator_count, 3);
    }

    #[test]
    fn staged_mode_moves_more_pcie_when_unfused() {
        let input = gen::micro_input(50_000, 3);
        let (plan, _) = select_chain_plan(input.schema().clone());
        let staged = WeaverConfig {
            mode: ExecMode::Staged,
            ..WeaverConfig::default()
        };

        let mut d1 = device();
        let fused = execute_plan(&plan, &[("t", &input)], &mut d1, &staged).unwrap();
        let mut d2 = device();
        let base = execute_plan(&plan, &[("t", &input)], &mut d2, &staged.baseline()).unwrap();

        assert!(
            base.stats.pcie_bytes() > fused.stats.pcie_bytes(),
            "{} vs {}",
            base.stats.pcie_bytes(),
            fused.stats.pcie_bytes()
        );
        assert!(base.pcie_seconds > fused.pcie_seconds);
        // Both modes produce identical results.
        let out = plan.outputs()[0];
        assert_eq!(fused.outputs[&out], base.outputs[&out]);
    }

    #[test]
    fn alloc_free_spans_are_constant_per_plan() {
        // The tentpole invariant: one Alloc (the arena reservation) and one
        // Free (its return) regardless of plan depth or mode — per-step
        // buffers are span-free sub-allocations.
        let input = gen::micro_input(20_000, 5);
        let (plan, _) = select_chain_plan(input.schema().clone());
        for fusion in [true, false] {
            for mode in [ExecMode::Resident, ExecMode::Staged] {
                let config = WeaverConfig {
                    fusion,
                    mode,
                    ..WeaverConfig::default()
                };
                let mut d = device();
                let report = execute_plan(&plan, &[("t", &input)], &mut d, &config).unwrap();
                let allocs = report
                    .spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::Alloc)
                    .count();
                let frees = report
                    .spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::Free)
                    .count();
                assert_eq!(
                    (allocs, frees),
                    (1, 1),
                    "fusion={fusion} mode={mode:?}: spans must be O(1)"
                );
                let arena = report.arena.unwrap();
                assert!(
                    arena.sub_allocs > 1,
                    "sub-allocations went through the arena"
                );
            }
        }
    }

    #[test]
    fn arena_reservation_is_the_tracker_peak() {
        // Predictor fidelity at the executor level: a fresh device's
        // tracker peak is exactly the arena reservation, which is exactly
        // the admission prediction — they are one computation.
        let input = gen::micro_input(30_000, 6);
        let (plan, _) = select_chain_plan(input.schema().clone());
        for mode in [ExecMode::Resident, ExecMode::Staged] {
            let config = WeaverConfig {
                mode,
                ..WeaverConfig::default()
            };
            let compiled = compile(&plan, &config).unwrap();
            let mut d = device();
            let report =
                execute_compiled(&plan, &compiled, &[("t", &input)], &mut d, &config).unwrap();
            let arena = report.arena.unwrap();
            assert_eq!(d.memory().peak(), arena.reservation, "{mode:?}");
            assert!(arena.high_water <= arena.reservation, "{mode:?}");
            assert_eq!(d.memory().in_use(), 0, "{mode:?}");
            let admission = crate::admit(&plan, &compiled, &[("t", &input)], u64::MAX).unwrap();
            let predicted = match mode {
                ExecMode::Resident => admission.resident_peak,
                ExecMode::Staged => admission.staged_peak,
            };
            assert_eq!(arena.reservation, predicted, "{mode:?}");
        }
    }

    /// Two relations whose join key is one constant: every row matches
    /// every row, so the true join output is quadratic while the admission
    /// estimate stays at `max(|L|, |R|)` rows — the canonical arena
    /// misprediction.
    fn all_collide_inputs(nl: usize, nr: usize) -> (Relation, Relation) {
        let schema = kw_relational::Schema::uniform_u32(2);
        let build = |n: usize, salt: u64| {
            let mut words = Vec::with_capacity(n * 2);
            for i in 0..n {
                words.push(7u64);
                words.push((i as u64).wrapping_mul(salt) % 997);
            }
            Relation::from_words(schema.clone(), words).unwrap()
        };
        (build(nl, 13), build(nr, 31))
    }

    #[test]
    fn strict_policy_surfaces_typed_overflow_and_spill_completes() {
        let (l, r) = all_collide_inputs(600, 400);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        plan.mark_output(j);
        let bindings: &[(&str, &Relation)] = &[("x", &l), ("y", &r)];

        // Strict: the quadratic output cannot fit the max(|L|,|R|)-sized
        // reservation — the run dies with the typed overflow (a capacity
        // error the ladder understands) and leaks nothing.
        let strict = WeaverConfig {
            arena: ArenaPolicy::Strict,
            ..WeaverConfig::default()
        };
        let mut d = device();
        let err = execute_plan(&plan, bindings, &mut d, &strict).unwrap_err();
        assert!(err.is_capacity(), "{err}");
        assert!(err.to_string().contains("arena overflow"), "{err}");
        assert_eq!(d.memory().in_use(), 0, "strict failure must not leak");

        // The default Spill policy completes the same query, counts the
        // mispredictions, and matches the oracle byte-for-byte.
        let mut d2 = device();
        let report = execute_plan(&plan, bindings, &mut d2, &WeaverConfig::default()).unwrap();
        let oracle = ops::join(&l, &r, 1).unwrap();
        assert_eq!(report.outputs[&j], oracle);
        assert!(d2.metrics().counter("kw_arena_spills_total") > 0);
        assert_eq!(d2.memory().in_use(), 0);
        // Spills are real allocations: the actual footprint exceeded the
        // reservation envelope and the report says so.
        let arena = report.arena.unwrap();
        assert!(report.peak_device_bytes > arena.reservation);
    }

    #[test]
    fn missing_binding_rejected() {
        let input = gen::micro_input(10, 4);
        let (plan, _) = select_chain_plan(input.schema().clone());
        let mut d = device();
        let err = execute_plan(
            &plan,
            &[("wrong", &input)],
            &mut d,
            &WeaverConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no relation bound"));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let (plan, _) = select_chain_plan(kw_relational::Schema::uniform_u32(4));
        let wrong = gen::selectivity_input(10, 2, 1);
        let mut d = device();
        assert!(execute_plan(&plan, &[("t", &wrong)], &mut d, &WeaverConfig::default()).is_err());
    }

    #[test]
    fn join_plan_fused_matches_oracle() {
        let (l, r) = gen::join_inputs(5_000, 2, 0.4, 9);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let sx = plan.add_op(sel(1, u32::MAX / 2), &[x]).unwrap();
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[sx, y]).unwrap();
        plan.mark_output(j);

        let oracle = ops::join(
            &ops::select(&l, &Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2))).unwrap(),
            &r,
            1,
        )
        .unwrap();

        let mut d1 = device();
        let fused = execute_plan(
            &plan,
            &[("x", &l), ("y", &r)],
            &mut d1,
            &WeaverConfig::default(),
        )
        .unwrap();
        assert_eq!(fused.outputs[&j], oracle);
        assert_eq!(fused.fusion_sets.len(), 1);

        let mut d2 = device();
        let base = execute_plan(
            &plan,
            &[("x", &l), ("y", &r)],
            &mut d2,
            &WeaverConfig::default().baseline(),
        )
        .unwrap();
        assert_eq!(base.outputs[&j], oracle);
        assert!(base.gpu_seconds > fused.gpu_seconds);
    }
}
