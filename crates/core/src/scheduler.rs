//! Multi-query stream scheduling: concurrent plans on one shared device,
//! with per-query fault domains and elastic admission waves.
//!
//! The paper measures fusion one query at a time; this module is the regime
//! where those wins compound. [`execute_batch`] takes a batch of independent
//! queries and schedules every (possibly fused) step of every query on the
//! shared device's stream/event model:
//!
//! * **Stream assignment** — each step of each query gets its own CUDA-style
//!   stream. Streams are created slot-major (step 0 of every query, then
//!   step 1, …) so the round-robin compute-engine assignment of
//!   [`kw_gpu_sim::StreamModel`] spreads *queries* — not steps of one
//!   query — across engines first.
//! * **Event edges** — a step waits on `record_event`/`wait_event` edges
//!   from the steps that produce its inputs and from the uploads of the
//!   base relations it consumes; nothing else orders it. Independent
//!   queries therefore overlap wherever the engines allow: one query's
//!   uploads hide under another's kernels, downloads under later compute.
//! * **Fairness** — work is *issued* slot-major round-robin across queries.
//!   Engines are FIFO in issue order (Fermi exposes a single hardware work
//!   queue), so round-robin issue is what keeps one long query from
//!   starving the rest; it also means a stalled step can head-of-line
//!   block its engine, exactly as the paper's hardware would.
//! * **Fault domains** — each query is its own fault domain. A transient
//!   injected fault striking a query's phase-1 scratch run or phase-2
//!   issue is retried with bounded exponential backoff
//!   ([`crate::RetryPolicy`], backoff charged to the shared clock); budget
//!   exhaustion or a fatal error *quarantines* that query
//!   ([`QueryOutcome::Failed`]) and frees its device reservation, instead
//!   of aborting the batch.
//! * **Admission waves** — when the sum of resident peaks exceeds free
//!   device bytes, [`crate::plan_waves`] partitions the batch into
//!   sequential waves that each fit (first-fit-decreasing over resident
//!   peaks). Queries too large even for a solo wave run after the waves
//!   via the [`crate::execute_resilient`] Resident → Staged → Chunked
//!   ladder and report [`QueryOutcome::Degraded`].
//!
//! Per-query computation runs ahead of the replay on a scratch device fork
//! (the same replay idiom as [`crate::execute_chunked`]): real relations in,
//! real relations out, per-step compute costs measured. The shared device
//! then sees each step as one `compute_on` span plus real streamed boundary
//! transfers, so its span log still reconciles ([`kw_gpu_sim::reconcile`])
//! and its stream graph — not a side formula — produces the batch makespan,
//! per-query latencies and throughput of [`BatchReport`]. While a wave is
//! in flight the device holds one reservation buffer per member query,
//! sized to its predicted resident peak, so the memory tracker sees the
//! concurrent footprint admission signed off on — and every error path
//! frees those reservations before moving on.

use std::collections::{BTreeMap, BTreeSet};

use kw_gpu_sim::{
    BufferId, Device, Direction, EventId, SimStats, Span, SpanKind, StreamId, StreamOp,
};
use kw_relational::Relation;

use crate::admission::{
    plan_waves, AdmittedMode, BatchAdmissionQuery, BatchWavePlan, QueryAdmission,
};
use crate::resilient::RetryPolicy;
use crate::{
    compile, CompiledPlan, ExecMode, NodeId, PlanNode, PlanReport, QueryPlan, Result, WeaverConfig,
    WeaverError,
};

/// One query of a batch: a plan, its input bindings, and a name for
/// reports and trace provenance.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// Name used in reports and span provenance (`q{i}:{name}` frames).
    pub name: &'a str,
    /// The plan to execute.
    pub plan: &'a QueryPlan,
    /// Named input relations, as for [`crate::execute_plan`].
    pub bindings: &'a [(&'a str, &'a Relation)],
}

/// How one query of a batch ended up: its fault-domain verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Clean first-try completion inside its admission wave.
    Completed,
    /// Completed after one or more transient faults were absorbed by
    /// retry-with-backoff (in the scratch run, the streamed issue, or a
    /// ladder attempt).
    Retried,
    /// Completed, but not concurrently resident: the query fell down the
    /// Resident → Staged → Chunked ladder to the given mode.
    Degraded {
        /// The mode that finally produced the answer.
        mode: AdmittedMode,
    },
    /// Quarantined: the query did not produce outputs, and the rest of the
    /// batch ran on without it.
    Failed {
        /// The error that exhausted the query's fault domain.
        reason: String,
    },
}

impl QueryOutcome {
    /// Stable lowercase name used in JSON exports and profile annotations.
    pub fn name(&self) -> &'static str {
        match self {
            QueryOutcome::Completed => "completed",
            QueryOutcome::Retried => "retried",
            QueryOutcome::Degraded { .. } => "degraded",
            QueryOutcome::Failed { .. } => "failed",
        }
    }

    /// Whether the query produced its outputs (anything but `Failed`).
    pub fn is_success(&self) -> bool {
        !matches!(self, QueryOutcome::Failed { .. })
    }
}

impl std::fmt::Display for QueryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryOutcome::Degraded { mode } => write!(f, "degraded({mode})"),
            QueryOutcome::Failed { reason } => write!(f, "failed: {reason}"),
            other => f.write_str(other.name()),
        }
    }
}

/// Per-query results and metrics of a batched execution.
#[derive(Debug)]
pub struct BatchQueryReport {
    /// The query's name, as given in [`BatchQuery`].
    pub name: String,
    /// How the query's fault domain resolved.
    pub outcome: QueryOutcome,
    /// The admission wave the query ran in (`None` for ladder-tail and
    /// quarantined queries).
    pub wave: Option<usize>,
    /// Transient-fault retries this query absorbed, across phases.
    pub retries: u32,
    /// Simulated seconds of retry backoff charged for this query.
    pub backoff_seconds: f64,
    /// Relations of the query's marked plan outputs (empty when
    /// quarantined).
    pub outputs: BTreeMap<NodeId, Relation>,
    /// Seconds from batch start until this query's last scheduled
    /// operation finished on the shared device (0 when quarantined).
    pub latency_seconds: f64,
    /// GPU computation seconds charged by this query's kernels.
    pub gpu_seconds: f64,
    /// PCIe seconds of this query's boundary transfers.
    pub pcie_seconds: f64,
    /// Number of (possibly fused) operators scheduled.
    pub operator_count: usize,
    /// The fusion sets the compiler chose.
    pub fusion_sets: Vec<Vec<NodeId>>,
    /// Peak device bytes of the query's working set (what the shared
    /// device must reserve for it while it is in flight).
    pub peak_device_bytes: u64,
}

/// What a batched execution did on the shared device.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query results, in batch order.
    pub queries: Vec<BatchQueryReport>,
    /// Shared-device makespan of the whole batch, seconds: from batch
    /// start to the last operation's end (waves and ladder tail included).
    pub makespan_seconds: f64,
    /// The same scheduled work with no overlap at all — the sum of every
    /// span's duration in the batch window (streamed ops, ladder work and
    /// retry backoff alike). An upper bound on `makespan_seconds`.
    pub serialized_seconds: f64,
    /// Submitted queries per second of makespan (0 for an empty batch).
    pub throughput_qps: f64,
    /// *Successful* queries per second of makespan — what the batch
    /// actually delivered once quarantines are subtracted.
    pub goodput_qps: f64,
    /// Number of admission waves that actually issued work.
    pub waves: usize,
    /// Median per-query latency over successful queries: the exact
    /// nearest-rank order statistic of the observed latencies (0 when no
    /// query succeeded). The log-bucketed latency histogram still feeds
    /// the metrics registry (`kw_batch_query_latency_cycles`), but the
    /// report quotes real percentiles, not power-of-two bucket bounds.
    pub latency_p50_seconds: f64,
    /// Exact 95th-percentile per-query latency (nearest rank — always one
    /// of the observed latencies).
    pub latency_p95_seconds: f64,
    /// Exact 99th-percentile per-query latency (nearest rank).
    pub latency_p99_seconds: f64,
    /// Busy seconds per hardware engine over this batch's window, keyed by
    /// engine name (`compute{i}`, `copy.h2d`, `copy.d2h`).
    pub engine_busy_seconds: BTreeMap<String, f64>,
    /// Per-engine busy time as a fraction of the batch makespan — the
    /// copy-compute overlap picture the stream model exists to produce.
    pub engine_utilization: BTreeMap<String, f64>,
    /// Roofline-style bottleneck attribution for the batch, with one
    /// operator row per query scope annotated with the query's outcome
    /// (see [`crate::ProfileReport`]).
    pub profile: crate::ProfileReport,
    /// Free errors the device swallowed on quarantine/unwind paths during
    /// this batch (`kw_free_errors_total` at batch end). Non-zero means
    /// some drain hit accounting corruption worth investigating.
    pub free_errors: u64,
    /// The first swallowed free error on the device, if any.
    pub first_free_error: Option<String>,
    /// The elastic admission verdict: wave packing, ladder routing,
    /// per-query rejections.
    pub admission: BatchWavePlan,
}

impl BatchReport {
    /// Queries that finished clean on the first try.
    pub fn completed_count(&self) -> usize {
        self.count(|o| matches!(o, QueryOutcome::Completed))
    }

    /// Queries that needed transient-fault retries but completed.
    pub fn retried_count(&self) -> usize {
        self.count(|o| matches!(o, QueryOutcome::Retried))
    }

    /// Queries that completed via a cheaper mode down the ladder.
    pub fn degraded_count(&self) -> usize {
        self.count(|o| matches!(o, QueryOutcome::Degraded { .. }))
    }

    /// Queries quarantined without producing outputs.
    pub fn quarantined_count(&self) -> usize {
        self.count(|o| matches!(o, QueryOutcome::Failed { .. }))
    }

    fn count(&self, pred: impl Fn(&QueryOutcome) -> bool) -> usize {
        self.queries.iter().filter(|q| pred(&q.outcome)).count()
    }
}

/// Per-step compute cost measured on the scratch run: the merged
/// kernel-side [`SimStats`] delta and its duration in cycles.
struct StepCompute {
    delta: SimStats,
    cycles: u64,
}

/// Group the scratch run's kernel spans by the `step{i}:` provenance frame
/// the executor pushes, yielding one compute-only delta per compiled step.
fn step_computes(spans: &[Span], steps: usize) -> Vec<StepCompute> {
    let mut out: Vec<StepCompute> = (0..steps)
        .map(|_| StepCompute {
            delta: SimStats::default(),
            cycles: 0,
        })
        .collect();
    for span in spans {
        if span.kind != SpanKind::Kernel {
            continue;
        }
        let Some(rest) = span.provenance.strip_prefix("step") else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let Ok(idx) = digits.parse::<usize>() else {
            continue;
        };
        if let Some(slot) = out.get_mut(idx) {
            slot.delta.merge(&span.delta);
        }
    }
    for slot in &mut out {
        slot.cycles = slot.delta.gpu_cycles;
    }
    out
}

/// Per-query retry accounting: one fault domain's budget and history.
///
/// The budget (`phase_used`) resets between the scratch phase and the
/// streamed-issue phase — the same "budget per rung" semantics
/// [`crate::execute_resilient`] applies per ladder rung — while `retries`
/// and `backoff_seconds` accumulate for the query's report.
#[derive(Default, Clone)]
struct RetryCounters {
    phase_used: u32,
    retries: u32,
    backoff_seconds: f64,
}

impl RetryCounters {
    fn reset_phase(&mut self) {
        self.phase_used = 0;
    }

    /// Absorb one transient fault: charge escalating backoff to the shared
    /// clock (under a `retry{n}` frame inside the caller's query scope)
    /// and spend one unit of budget. Returns `false` when the budget is
    /// exhausted, in which case the fault propagates and quarantines the
    /// query.
    fn absorb(&mut self, device: &mut Device, policy: &RetryPolicy) -> bool {
        if self.phase_used >= policy.max_retries {
            return false;
        }
        let wait =
            policy.base_backoff_seconds * policy.backoff_multiplier.powi(self.phase_used as i32);
        device.push_scope(format!("retry{}", self.retries + 1));
        device.charge_backoff(wait);
        device.pop_scope();
        self.backoff_seconds += wait;
        self.phase_used += 1;
        self.retries += 1;
        true
    }
}

/// A streamed transfer inside a query's fault domain: transient faults are
/// absorbed by `counters` until its budget runs out.
fn transfer_with_retry(
    device: &mut Device,
    stream: StreamId,
    direction: Direction,
    bytes: u64,
    policy: &RetryPolicy,
    counters: &mut RetryCounters,
) -> Result<f64> {
    loop {
        match device.transfer_on(stream, direction, bytes) {
            Ok(seconds) => return Ok(seconds),
            Err(e) if e.is_transient() && counters.absorb(device, policy) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// An allocation inside a query's fault domain (wave reservations), with
/// the same transient-fault absorption as [`transfer_with_retry`].
fn alloc_with_retry(
    device: &mut Device,
    bytes: u64,
    label: &str,
    policy: &RetryPolicy,
    counters: &mut RetryCounters,
) -> Result<BufferId> {
    loop {
        match device.alloc(bytes, label) {
            Ok(id) => return Ok(id),
            Err(e) if e.is_transient() && counters.absorb(device, policy) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Execute a batch of independent queries concurrently on one shared
/// device, with [`RetryPolicy::default`] fault domains.
///
/// Each query's relational work runs ahead on a scratch device fork (real
/// data, per-step costs measured), then every step is scheduled on the
/// shared device — one stream per step, `record_event`/`wait_event` edges
/// for data dependences, boundary transfers on the H2D/D2H copy engines —
/// and the stream graph's makespan becomes the batch wallclock. Outputs are
/// byte-identical to solo execution by construction: stream interleaving
/// decides *when* work runs, never what it computes.
///
/// Faults and capacity misses never abort the batch: each query is its own
/// fault domain and reports a [`QueryOutcome`]. A batch whose concurrent
/// footprint exceeds free device bytes is partitioned into sequential
/// admission waves; queries too large for a solo wave degrade down the
/// Resident → Staged → Chunked ladder after the waves.
///
/// # Errors
///
/// Returns compile errors (a malformed plan is a caller bug, not a fault
/// domain). Everything from admission onward — binding errors, injected
/// faults, capacity misses — is absorbed into per-query outcomes.
///
/// # Examples
///
/// ```
/// use kw_core::{execute_batch, BatchQuery, QueryOutcome, QueryPlan, WeaverConfig};
/// use kw_gpu_sim::{Device, DeviceConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{gen, CmpOp, Predicate, Value};
///
/// let input = gen::micro_input(10_000, 11);
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", input.schema().clone());
/// let s = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1 << 31)) },
///     &[t],
/// )?;
/// plan.mark_output(s);
///
/// let bindings = [("t", &input)];
/// let queries = [
///     BatchQuery { name: "q0", plan: &plan, bindings: &bindings },
///     BatchQuery { name: "q1", plan: &plan, bindings: &bindings },
/// ];
/// let mut device = Device::new(DeviceConfig::fermi_c2050());
/// let batch = execute_batch(&queries, &mut device, &WeaverConfig::default())?;
/// assert_eq!(batch.queries.len(), 2);
/// assert!(batch.queries.iter().all(|q| q.outcome == QueryOutcome::Completed));
/// assert!(batch.makespan_seconds <= batch.serialized_seconds);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn execute_batch(
    queries: &[BatchQuery<'_>],
    device: &mut Device,
    config: &WeaverConfig,
) -> Result<BatchReport> {
    execute_batch_with_policy(queries, device, config, &RetryPolicy::default())
}

/// [`execute_batch`] with an explicit per-query [`RetryPolicy`].
///
/// # Errors
///
/// Same contract as [`execute_batch`]: only compile errors propagate.
pub fn execute_batch_with_policy(
    queries: &[BatchQuery<'_>],
    device: &mut Device,
    config: &WeaverConfig,
    policy: &RetryPolicy,
) -> Result<BatchReport> {
    let compiled: Vec<CompiledPlan> = queries
        .iter()
        .map(|q| compile(q.plan, config))
        .collect::<Result<_>>()?;
    execute_batch_compiled_with_policy(queries, &compiled, device, config, policy)
}

/// [`execute_batch_with_policy`] over already-compiled plans: `compiled[i]`
/// must be `compile(queries[i].plan, config)` (or an equal plan/config
/// pair). This is the service-loop entry point — a compiled-plan cache can
/// hand the same [`CompiledPlan`] to every arrival of a repeated shape
/// instead of paying `compile()` per query, which is what
/// [`execute_batch`] does internally.
///
/// # Errors
///
/// Returns [`WeaverError::Plan`] when `queries` and `compiled` disagree in
/// length. Everything from admission onward is absorbed into per-query
/// outcomes, exactly as for [`execute_batch`].
pub fn execute_batch_compiled_with_policy(
    queries: &[BatchQuery<'_>],
    compiled: &[CompiledPlan],
    device: &mut Device,
    config: &WeaverConfig,
    policy: &RetryPolicy,
) -> Result<BatchReport> {
    if queries.len() != compiled.len() {
        return Err(WeaverError::plan(format!(
            "batch has {} queries but {} compiled plans",
            queries.len(),
            compiled.len()
        )));
    }

    // The batch window opens before phase 1: scratch runs charge nothing
    // to the shared clock except retry backoff, which belongs inside the
    // window (the wait delays the streamed work that follows).
    let batch_start = device.sync_streams();
    let spans_before = device.spans().len();
    let ops_before = device.streams().ops().len();

    // Elastic admission: pack wave-sized queries first-fit-decreasing,
    // route oversized ones to the ladder tail, reject per query.
    let free = device
        .memory()
        .capacity()
        .saturating_sub(device.memory().in_use());
    let admission_input: Vec<BatchAdmissionQuery<'_>> = queries
        .iter()
        .zip(compiled)
        .map(|(q, c)| (q.plan, c, q.bindings))
        .collect();
    let admission = plan_waves(&admission_input, free);

    let mut wave_of: Vec<Option<usize>> = Vec::with_capacity(queries.len());
    let mut on_ladder: Vec<bool> = Vec::with_capacity(queries.len());
    let mut failed: Vec<Option<String>> = Vec::with_capacity(queries.len());
    for verdict in &admission.per_query {
        match verdict {
            QueryAdmission::Wave { wave, .. } => {
                wave_of.push(Some(*wave));
                on_ladder.push(false);
                failed.push(None);
            }
            QueryAdmission::Ladder { .. } => {
                wave_of.push(None);
                on_ladder.push(true);
                failed.push(None);
            }
            QueryAdmission::Rejected { reason } => {
                wave_of.push(None);
                on_ladder.push(false);
                failed.push(Some(reason.clone()));
            }
        }
    }
    let mut counters: Vec<RetryCounters> = vec![RetryCounters::default(); queries.len()];
    let mut degraded: Vec<Option<AdmittedMode>> = vec![None; queries.len()];

    // Phase 1: run every wave query on a scratch fork (derived fault
    // streams keep injected faults striking inside query execution) to
    // obtain its outputs and measured per-step compute costs. Each query
    // is a fault domain: transients retry with backoff, a capacity miss
    // re-routes the query to the ladder tail, anything else quarantines it.
    let mut scratch: Vec<Option<(PlanReport, Vec<StepCompute>, u64)>> =
        (0..queries.len()).map(|_| None).collect();
    for (qi, q) in queries.iter().enumerate() {
        if wave_of[qi].is_none() || failed[qi].is_some() {
            continue;
        }
        // Size the scratch run's arena from the admission verdict this wave
        // was planned with — reservation and plan are one prediction.
        let reservation = match &admission.per_query[qi] {
            QueryAdmission::Wave { report, .. } => report.resident_peak,
            _ => unreachable!("phase 1 only runs wave-admitted queries"),
        };
        loop {
            let mut cfg = *config;
            cfg.mode = ExecMode::Resident;
            let mut fork = device.fork_scratch();
            match crate::executor::execute_compiled_sized(
                q.plan,
                &compiled[qi],
                q.bindings,
                &mut fork,
                &cfg,
                reservation,
            ) {
                Ok(report) => {
                    let computes = step_computes(&report.spans, compiled[qi].steps.len());
                    let peak = fork.memory().peak();
                    scratch[qi] = Some((report, computes, peak));
                    break;
                }
                Err(e) if e.is_transient() => {
                    device.push_scope(format!("q{qi}:{}", q.name));
                    let absorbed = counters[qi].absorb(device, policy);
                    device.pop_scope();
                    if !absorbed {
                        failed[qi] = Some(e.to_string());
                        wave_of[qi] = None;
                        break;
                    }
                }
                Err(e) if e.is_capacity() => {
                    // Admission over-estimated the free headroom (or the
                    // estimate under-shot the real footprint): fall out of
                    // the wave and take the ladder after the batch.
                    let _ = e;
                    wave_of[qi] = None;
                    on_ladder[qi] = true;
                    break;
                }
                Err(e) => {
                    failed[qi] = Some(e.to_string());
                    wave_of[qi] = None;
                    break;
                }
            }
        }
    }

    // Phase 2: schedule each wave on the shared device. Streams are
    // created slot-major so the engine round-robin spreads queries first.
    let mut step_streams: Vec<Vec<StreamId>> = queries.iter().map(|_| Vec::new()).collect();
    let mut waves_issued = 0usize;
    for (wi, wave) in admission.waves.iter().enumerate() {
        let members: Vec<usize> = wave
            .iter()
            .copied()
            .filter(|&qi| wave_of[qi] == Some(wi) && failed[qi].is_none() && scratch[qi].is_some())
            .collect();
        if members.is_empty() {
            continue;
        }
        waves_issued += 1;

        // Reserve each member's predicted resident peak for the wave's
        // flight, so the shared memory tracker sees the concurrent
        // footprint admission signed off on. A reservation that cannot be
        // allocated (past retries) quarantines only its query.
        let mut reservations: BTreeMap<usize, BufferId> = BTreeMap::new();
        for &qi in &members {
            counters[qi].reset_phase();
            let peak = match &admission.per_query[qi] {
                QueryAdmission::Wave { report, .. } => report.resident_peak,
                _ => unreachable!("wave members are wave-admitted"),
            };
            if peak == 0 {
                continue;
            }
            device.push_scope(format!("q{qi}:{}", queries[qi].name));
            let got = alloc_with_retry(
                device,
                peak,
                &format!("q{qi}.workingset"),
                policy,
                &mut counters[qi],
            );
            device.pop_scope();
            match got {
                Ok(buf) => {
                    reservations.insert(qi, buf);
                }
                Err(e) => failed[qi] = Some(e.to_string()),
            }
        }

        let alive: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&qi| failed[qi].is_none())
            .collect();
        let max_steps = alive
            .iter()
            .map(|&qi| compiled[qi].steps.len())
            .max()
            .unwrap_or(0);
        for slot in 0..max_steps {
            for &qi in &alive {
                if slot < compiled[qi].steps.len() {
                    step_streams[qi].push(device.create_stream());
                }
            }
        }

        // Per-query issue state for this wave.
        struct QState {
            /// `node -> producing step index` for intermediate results.
            producer: BTreeMap<NodeId, usize>,
            /// Upload event per base relation; `None` for zero-byte uploads
            /// (skipped outright, nothing to wait for).
            uploaded: BTreeMap<NodeId, Option<(StreamId, EventId)>>,
            /// Completion event per issued step.
            step_done: Vec<Option<EventId>>,
            pcie_seconds: f64,
        }
        let mut states: BTreeMap<usize, QState> = alive
            .iter()
            .map(|&qi| {
                let c = &compiled[qi];
                let mut producer = BTreeMap::new();
                for (i, step) in c.steps.iter().enumerate() {
                    for &o in &step.outputs {
                        producer.insert(o, i);
                    }
                }
                (
                    qi,
                    QState {
                        producer,
                        uploaded: BTreeMap::new(),
                        step_done: vec![None; c.steps.len()],
                        pcie_seconds: 0.0,
                    },
                )
            })
            .collect();

        for slot in 0..max_steps {
            for &qi in &alive {
                if failed[qi].is_some() {
                    continue; // quarantined mid-wave: skip its later slots
                }
                let q = &queries[qi];
                let Some(step) = compiled[qi].steps.get(slot) else {
                    continue;
                };
                let stream = step_streams[qi][slot];
                let state = states.get_mut(&qi).expect("alive queries have state");
                let (report, computes, _) = scratch[qi].as_ref().expect("alive queries ran ahead");
                let budget = &mut counters[qi];

                // Every span this step emits carries the query's identity,
                // so a batch trace shows which query each overlapped op
                // belongs to.
                device.push_scope(format!("q{qi}:{}", q.name));
                let issued = (|device: &mut Device| -> Result<()> {
                    // Upload base relations on their first consumer's
                    // stream. Zero-byte relations are skipped outright (no
                    // fabricated per-transfer latency), mirroring chunked
                    // execution.
                    for &node in &step.inputs {
                        if !matches!(q.plan.node(node), PlanNode::Input { .. })
                            || state.uploaded.contains_key(&node)
                        {
                            continue;
                        }
                        let name = match q.plan.node(node) {
                            PlanNode::Input { name, .. } => name,
                            PlanNode::Operator { .. } => unreachable!("checked above"),
                        };
                        let bytes = q
                            .bindings
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, r)| r.byte_size() as u64)
                            .ok_or_else(|| {
                                WeaverError::binding(format!("no relation bound to '{name}'"))
                            })?;
                        let ev = if bytes > 0 {
                            state.pcie_seconds += transfer_with_retry(
                                device,
                                stream,
                                Direction::HostToDevice,
                                bytes,
                                policy,
                                budget,
                            )?;
                            Some((stream, device.record_event(stream)?))
                        } else {
                            None
                        };
                        state.uploaded.insert(node, ev);
                    }

                    // Dependence edges: producing steps and cross-stream
                    // uploads must complete before this step's kernels run.
                    // Same-stream uploads are already ordered by stream FIFO.
                    for &node in &step.inputs {
                        if let Some(&p) = state.producer.get(&node) {
                            let ev = state.step_done[p].ok_or_else(|| {
                                WeaverError::plan(format!(
                                    "step input {node} scheduled before its producer"
                                ))
                            })?;
                            device.wait_event(stream, ev)?;
                        } else if let Some(&Some((src, ev))) = state.uploaded.get(&node) {
                            if src != stream {
                                device.wait_event(stream, ev)?;
                            }
                        }
                    }

                    let compute = &computes[slot];
                    device.compute_on(
                        stream,
                        step.op.label.clone(),
                        &compute.delta,
                        compute.cycles,
                    )?;

                    // Marked plan outputs return to the host as soon as
                    // their producing step finishes; the download then
                    // overlaps whatever the engines run next.
                    for &node in &step.outputs {
                        if !q.plan.outputs().contains(&node) {
                            continue;
                        }
                        let bytes = report.outputs[&node].byte_size() as u64;
                        if bytes > 0 {
                            state.pcie_seconds += transfer_with_retry(
                                device,
                                stream,
                                Direction::DeviceToHost,
                                bytes,
                                policy,
                                budget,
                            )?;
                        }
                    }
                    state.step_done[slot] = Some(device.record_event(stream)?);
                    Ok(())
                })(device);
                device.pop_scope();
                if let Err(e) = issued {
                    // Quarantine this query only: drain in-flight work so
                    // the clock settles, free the query's reservation so
                    // nothing stays resident on its behalf, and let the
                    // rest of the wave keep issuing.
                    device.sync_streams();
                    if let Some(buf) = reservations.remove(&qi) {
                        // A reservation that cannot be returned is
                        // accounting corruption, not a reason to abort the
                        // wave: count it and keep the first message.
                        if let Err(fe) = device.free(buf) {
                            device.note_free_error(&fe);
                        }
                    }
                    failed[qi] = Some(e.to_string());
                }
            }
        }

        // Wave barrier: the next wave's reservations replace this one's,
        // so its streamed work must be fully drained and freed first.
        device.sync_streams();
        for (_, buf) in reservations {
            device.free(buf)?;
        }
    }

    // Ladder tail: queries too large for a solo wave (or whose scratch run
    // hit a capacity miss) run one at a time through the resilient
    // Resident → Staged → Chunked driver on the now-empty shared device.
    let mut ladder_done: Vec<Option<(PlanReport, u64, f64, u64)>> =
        (0..queries.len()).map(|_| None).collect();
    for (qi, q) in queries.iter().enumerate() {
        if !on_ladder[qi] || failed[qi].is_some() {
            continue;
        }
        let gpu_before = device.stats().gpu_cycles;
        let pcie_before = device.stats().pcie_seconds;
        device.push_scope(format!("q{qi}:{}", q.name));
        let result = crate::execute_compiled_resilient(
            q.plan,
            &compiled[qi],
            q.bindings,
            device,
            config,
            policy,
        );
        device.pop_scope();
        match result {
            Ok(report) => {
                let res = report
                    .resilience
                    .as_ref()
                    .expect("resilient runs carry a resilience report");
                counters[qi].retries += res.retries;
                counters[qi].backoff_seconds += res.backoff_seconds;
                if res.final_mode != AdmittedMode::Resident {
                    degraded[qi] = Some(res.final_mode);
                }
                let gpu_cycles = device.stats().gpu_cycles - gpu_before;
                let pcie = device.stats().pcie_seconds - pcie_before;
                let last_end = device.makespan();
                ladder_done[qi] = Some((report, gpu_cycles, pcie, last_end));
            }
            Err(e) => {
                // The executor's cleanup guards already freed the attempt's
                // buffers; settle the clock and quarantine.
                device.sync_streams();
                failed[qi] = Some(e.to_string());
            }
        }
    }

    // Read the batch off the stream graph: makespan from the unified cycle
    // clock, per-query latency from each query's last operation, serialized
    // cost as the overlap-free sum of every span's duration in the window
    // (streamed ops, ladder work and backoff alike — so `serialized >=
    // makespan` survives retried batches).
    let end_cycles = device.sync_streams();
    let makespan_cycles = end_cycles - batch_start;
    let makespan_seconds = device.config().cycles_to_seconds(makespan_cycles);
    let serialized_cycles: u64 = device.spans()[spans_before..]
        .iter()
        .map(|s| s.end_cycle - s.start_cycle)
        .sum();
    let serialized_seconds = device.config().cycles_to_seconds(serialized_cycles);
    // Copy the batch window's ops out of the device so metrics publication
    // below can borrow it mutably.
    let batch_ops: Vec<StreamOp> = device.streams().ops()[ops_before..].to_vec();

    let mut reports = Vec::with_capacity(queries.len());
    let mut latencies: Vec<u64> = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let outcome = if let Some(reason) = failed[qi].take() {
            QueryOutcome::Failed { reason }
        } else if let Some(mode) = degraded[qi] {
            QueryOutcome::Degraded { mode }
        } else if counters[qi].retries > 0 {
            QueryOutcome::Retried
        } else {
            QueryOutcome::Completed
        };

        let (outputs, latency_cycles, gpu_cycles, pcie_seconds, peak) =
            if let Some((report, computes, peak)) = &scratch[qi] {
                if outcome.is_success() {
                    let streams: BTreeSet<StreamId> = step_streams[qi].iter().copied().collect();
                    let last_end = batch_ops
                        .iter()
                        .filter(|op| streams.contains(&op.stream))
                        .map(|op| op.end_cycle)
                        .max()
                        .unwrap_or(batch_start);
                    let gpu: u64 = computes.iter().map(|c| c.cycles).sum();
                    // PCIe seconds were accumulated per wave-local state; they
                    // equal the sum of this query's streamed transfer spans.
                    let pcie: f64 = device.spans()[spans_before..]
                        .iter()
                        .filter(|s| s.kind == SpanKind::Transfer)
                        .filter(|s| {
                            s.provenance
                                .split('/')
                                .next()
                                .is_some_and(|f| f == format!("q{qi}:{}", q.name))
                        })
                        .map(|s| s.delta.pcie_seconds)
                        .sum();
                    (
                        report.outputs.clone(),
                        last_end.max(batch_start) - batch_start,
                        gpu,
                        pcie,
                        *peak,
                    )
                } else {
                    (BTreeMap::new(), 0, 0, 0.0, *peak)
                }
            } else if let Some((report, gpu_cycles, pcie, last_end)) = &ladder_done[qi] {
                (
                    report.outputs.clone(),
                    last_end.max(&batch_start) - batch_start,
                    *gpu_cycles,
                    *pcie,
                    report.peak_device_bytes,
                )
            } else {
                (BTreeMap::new(), 0, 0, 0.0, 0)
            };

        if outcome.is_success() {
            latencies.push(latency_cycles);
            device
                .metrics_mut()
                .observe("kw_batch_query_latency_cycles", latency_cycles);
        }
        reports.push(BatchQueryReport {
            name: q.name.to_string(),
            wave: if outcome.is_success() {
                wave_of[qi]
            } else {
                None
            },
            retries: counters[qi].retries,
            backoff_seconds: counters[qi].backoff_seconds,
            outputs,
            latency_seconds: device.config().cycles_to_seconds(latency_cycles),
            gpu_seconds: device.config().cycles_to_seconds(gpu_cycles),
            pcie_seconds,
            operator_count: compiled[qi].steps.len(),
            fusion_sets: compiled[qi].fusion_sets.clone(),
            peak_device_bytes: peak,
            outcome,
        });
    }

    let successes = reports.iter().filter(|r| r.outcome.is_success()).count();
    let total_retries: u64 = reports.iter().map(|r| u64::from(r.retries)).sum();
    let quarantines = (reports.len() - successes) as u64;
    let degradations = reports
        .iter()
        .filter(|r| matches!(r.outcome, QueryOutcome::Degraded { .. }))
        .count() as u64;
    {
        let m = device.metrics_mut();
        m.inc("kw_batches_total", 1);
        m.inc("kw_batch_queries_total", queries.len() as u64);
        m.inc("kw_batch_waves_total", waves_issued as u64);
        m.inc("kw_batch_retries_total", total_retries);
        m.inc("kw_batch_quarantines_total", quarantines);
        m.inc("kw_batch_degradations_total", degradations);
    }

    let throughput_qps = if makespan_seconds > 0.0 {
        queries.len() as f64 / makespan_seconds
    } else {
        0.0
    };
    let goodput_qps = if makespan_seconds > 0.0 {
        successes as f64 / makespan_seconds
    } else {
        0.0
    };

    // Per-engine busy time over this batch's window (the device-lifetime
    // `engine_busy()` would include any pre-batch streamed work).
    let mut engine_busy_cycles: BTreeMap<String, u64> = BTreeMap::new();
    for op in batch_ops {
        *engine_busy_cycles.entry(op.engine.name()).or_insert(0) += op.duration();
    }
    let engine_busy_seconds: BTreeMap<String, f64> = engine_busy_cycles
        .iter()
        .map(|(name, &c)| (name.clone(), device.config().cycles_to_seconds(c)))
        .collect();
    let engine_utilization: BTreeMap<String, f64> = engine_busy_seconds
        .iter()
        .map(|(name, &busy)| {
            let util = if makespan_seconds > 0.0 {
                busy / makespan_seconds
            } else {
                0.0
            };
            (name.clone(), util)
        })
        .collect();

    let mut profile = crate::ProfileReport::from_spans(
        device.spans(),
        device.stats(),
        device.config(),
        device.config().cycles_to_seconds(end_cycles),
    );
    profile.peak_device_bytes = device.memory().peak();
    let outcome_labels: Vec<(String, String)> = queries
        .iter()
        .enumerate()
        .map(|(qi, q)| {
            (
                format!("q{qi}:{}", q.name),
                reports[qi].outcome.name().to_string(),
            )
        })
        .collect();
    profile.annotate_outcomes(&outcome_labels);

    // Exact nearest-rank percentiles over the successful queries' observed
    // latencies. The log-bucketed histogram still backs the metrics
    // registry (`kw_batch_query_latency_cycles` above) for cheap streaming
    // monitoring; the report quotes the true order statistics so a
    // quoted p95 is always one of the actual latencies, not a
    // power-of-two bucket's upper bound.
    latencies.sort_unstable();
    let latency_at = |q: f64| -> f64 {
        let n = latencies.len();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        device.config().cycles_to_seconds(latencies[rank - 1])
    };

    Ok(BatchReport {
        queries: reports,
        makespan_seconds,
        serialized_seconds,
        throughput_qps,
        goodput_qps,
        waves: waves_issued,
        latency_p50_seconds: latency_at(0.50),
        latency_p95_seconds: latency_at(0.95),
        latency_p99_seconds: latency_at(0.99),
        engine_busy_seconds,
        engine_utilization,
        profile,
        free_errors: device.metrics().counter("kw_free_errors_total"),
        first_free_error: device.first_free_error().map(String::from),
        admission,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute_plan;
    use kw_gpu_sim::{DeviceConfig, FaultConfig, FaultKind, ScriptedFault};
    use kw_primitives::RaOp;
    use kw_relational::{gen, CmpOp, Predicate, Value};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    fn sel(attr: usize, v: u32) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(v)),
        }
    }

    fn chain(schema: kw_relational::Schema, depth: usize) -> QueryPlan {
        let mut p = QueryPlan::new();
        let mut cur = p.add_input("t", schema);
        for a in 0..depth {
            cur = p.add_op(sel(a % 4, u32::MAX / 2), &[cur]).unwrap();
        }
        p.mark_output(cur);
        p
    }

    #[test]
    fn batch_outputs_match_solo_execution() {
        let a = gen::micro_input(20_000, 41);
        let b = gen::micro_input(30_000, 42);
        let pa = chain(a.schema().clone(), 2);
        let pb = chain(b.schema().clone(), 3);
        let ba = [("t", &a)];
        let bb = [("t", &b)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "qb",
                plan: &pb,
                bindings: &bb,
            },
        ];
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        for (q, r) in queries.iter().zip(&batch.queries) {
            assert_eq!(r.outcome, QueryOutcome::Completed);
            let mut solo_dev = device();
            let solo =
                execute_plan(q.plan, q.bindings, &mut solo_dev, &WeaverConfig::default()).unwrap();
            assert_eq!(r.outputs, solo.outputs, "{}", r.name);
        }
        assert_eq!(batch.waves, 1, "both queries fit one wave on the C2050");
        assert_eq!(dev.memory().in_use(), 0, "reservations must be freed");
    }

    #[test]
    fn batch_beats_serial_and_respects_engine_bounds() {
        let a = gen::micro_input(100_000, 43);
        let b = gen::micro_input(100_000, 44);
        let pa = chain(a.schema().clone(), 2);
        let pb = chain(b.schema().clone(), 2);
        let ba = [("t", &a)];
        let bb = [("t", &b)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "qb",
                plan: &pb,
                bindings: &bb,
            },
        ];
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        // Solo makespans on fresh devices.
        let mut solo_sum = 0.0;
        for q in &queries {
            let mut d = device();
            let solo = execute_batch(&[*q], &mut d, &WeaverConfig::default()).unwrap();
            solo_sum += solo.makespan_seconds;
        }
        assert!(
            batch.makespan_seconds < solo_sum,
            "sharing the device must beat serial: {} vs {}",
            batch.makespan_seconds,
            solo_sum
        );
        // Lower bound: the busiest engine's busy time.
        let busiest = *dev.streams().engine_busy().values().max().unwrap();
        let floor = dev.config().cycles_to_seconds(busiest);
        assert!(batch.makespan_seconds >= floor - 1e-15);
        assert!(batch.makespan_seconds <= batch.serialized_seconds + 1e-15);
        assert!(batch.throughput_qps > 0.0);
        assert_eq!(batch.goodput_qps, batch.throughput_qps, "no quarantines");
        // Latencies end inside the batch window.
        for r in &batch.queries {
            assert!(r.latency_seconds > 0.0);
            assert!(r.latency_seconds <= batch.makespan_seconds + 1e-15);
        }
    }

    #[test]
    fn batch_trace_reconciles_and_carries_query_provenance() {
        let a = gen::micro_input(30_000, 45);
        let pa = chain(a.schema().clone(), 2);
        let ba = [("t", &a)];
        let queries = [
            BatchQuery {
                name: "alpha",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "beta",
                plan: &pa,
                bindings: &ba,
            },
        ];
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
        let provs: Vec<&str> = dev.spans().iter().map(|s| s.provenance.as_str()).collect();
        assert!(provs.iter().any(|p| p.starts_with("q0:alpha")), "{provs:?}");
        assert!(provs.iter().any(|p| p.starts_with("q1:beta")), "{provs:?}");
        // Outcomes are folded into the profile's per-query rows.
        let annotated: Vec<_> = batch
            .profile
            .operators
            .iter()
            .filter(|op| op.outcome.is_some())
            .collect();
        assert_eq!(annotated.len(), 2, "{:?}", batch.profile.operators);
        assert!(annotated
            .iter()
            .all(|op| op.outcome.as_deref() == Some("completed")));
    }

    #[test]
    fn oversubscribed_batch_runs_in_sequential_waves() {
        // 8 queries whose summed resident peaks blow past the tiny device:
        // the old scheduler rejected this batch outright; waves absorb it.
        let input = gen::micro_input(20_000, 46);
        let plan = chain(input.schema().clone(), 2);
        let bindings = [("t", &input)];
        let queries: Vec<BatchQuery<'_>> = (0..8)
            .map(|_| BatchQuery {
                name: "q",
                plan: &plan,
                bindings: &bindings,
            })
            .collect();
        let mut dev = Device::new(DeviceConfig::tiny());
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
        assert!(
            batch.waves >= 2,
            "expected multiple waves, got {}",
            batch.waves
        );
        assert_eq!(batch.quarantined_count(), 0);

        let mut solo_dev = device();
        let solo = execute_plan(&plan, &bindings, &mut solo_dev, &WeaverConfig::default()).unwrap();
        for r in &batch.queries {
            assert_eq!(r.outcome, QueryOutcome::Completed);
            assert!(r.wave.is_some());
            assert_eq!(r.outputs, solo.outputs);
        }
        assert_eq!(dev.memory().in_use(), 0);
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
    }

    #[test]
    fn oversized_query_degrades_down_the_ladder() {
        // One whale that cannot fit resident even alone rides the ladder
        // tail and still answers; the small query stays in a wave.
        let whale_in = gen::micro_input(120_000, 47);
        let small_in = gen::micro_input(5_000, 48);
        let whale_plan = chain(whale_in.schema().clone(), 2);
        let small_plan = chain(small_in.schema().clone(), 2);
        let bw = [("t", &whale_in)];
        let bs = [("t", &small_in)];
        let queries = [
            BatchQuery {
                name: "whale",
                plan: &whale_plan,
                bindings: &bw,
            },
            BatchQuery {
                name: "small",
                plan: &small_plan,
                bindings: &bs,
            },
        ];
        let mut dev = Device::new(DeviceConfig::tiny());
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        let whale = &batch.queries[0];
        assert!(
            matches!(whale.outcome, QueryOutcome::Degraded { .. }),
            "{:?}",
            whale.outcome
        );
        assert_eq!(whale.wave, None);
        let mut solo_dev = device();
        let solo = execute_plan(&whale_plan, &bw, &mut solo_dev, &WeaverConfig::default()).unwrap();
        assert_eq!(whale.outputs, solo.outputs);

        let small = &batch.queries[1];
        assert_eq!(small.outcome, QueryOutcome::Completed);
        assert!(small.wave.is_some());
        assert_eq!(dev.memory().in_use(), 0);
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
    }

    #[test]
    fn faulted_query_is_quarantined_not_the_batch() {
        // Query 1 has no binding for its input: a deterministic fatal error
        // in its fault domain. The batch must complete around it.
        let a = gen::micro_input(20_000, 49);
        let plan = chain(a.schema().clone(), 2);
        let good = [("t", &a)];
        let bad = [("wrong", &a)];
        let queries = [
            BatchQuery {
                name: "good",
                plan: &plan,
                bindings: &good,
            },
            BatchQuery {
                name: "bad",
                plan: &plan,
                bindings: &bad,
            },
        ];
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
        assert_eq!(batch.queries[0].outcome, QueryOutcome::Completed);
        assert!(
            matches!(batch.queries[1].outcome, QueryOutcome::Failed { .. }),
            "{:?}",
            batch.queries[1].outcome
        );
        assert!(batch.queries[1].outputs.is_empty());
        assert_eq!(batch.quarantined_count(), 1);
        assert!(batch.goodput_qps < batch.throughput_qps);
        assert_eq!(dev.memory().in_use(), 0);
        assert_eq!(dev.metrics().counter("kw_batch_quarantines_total"), 1);
    }

    #[test]
    fn scripted_transient_fault_is_retried_with_backoff() {
        let a = gen::micro_input(20_000, 50);
        let plan = chain(a.schema().clone(), 2);
        let bindings = [("t", &a)];
        let queries = [BatchQuery {
            name: "q",
            plan: &plan,
            bindings: &bindings,
        }];
        let mut dev = device();
        // Attempt 0 of the parent device's transfer stream is the first
        // phase-2 upload; the scratch fork uses a derived stream.
        dev.inject_faults(FaultConfig::scripted(vec![ScriptedFault {
            kind: FaultKind::Transfer,
            attempt: 0,
        }]));
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
        let q = &batch.queries[0];
        assert_eq!(q.outcome, QueryOutcome::Retried, "{:?}", q.outcome);
        assert!(q.retries >= 1);
        assert!(q.backoff_seconds > 0.0);
        assert!(dev.stats().backoff_seconds > 0.0);

        let mut clean_dev = device();
        let clean = execute_batch(&queries, &mut clean_dev, &WeaverConfig::default()).unwrap();
        assert_eq!(q.outputs, clean.queries[0].outputs);
        assert!(
            batch.serialized_seconds >= batch.makespan_seconds - 1e-15,
            "serialized {} must not dip below makespan {}",
            batch.serialized_seconds,
            batch.makespan_seconds
        );
        assert_eq!(dev.memory().in_use(), 0);
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
    }

    #[test]
    fn all_failed_batch_reports_finite_zero_percentiles() {
        // Every query binds the wrong name, so every fault domain fails and
        // the percentile computation runs over zero successful latencies.
        // The report must stay total: exact zeros, no NaN, no index past an
        // empty vector.
        let a = gen::micro_input(10_000, 51);
        let plan = chain(a.schema().clone(), 2);
        let bad = [("wrong", &a)];
        let queries: Vec<BatchQuery<'_>> = (0..3)
            .map(|_| BatchQuery {
                name: "doomed",
                plan: &plan,
                bindings: &bad,
            })
            .collect();
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
        assert_eq!(batch.quarantined_count(), 3);
        for p in [
            batch.latency_p50_seconds,
            batch.latency_p95_seconds,
            batch.latency_p99_seconds,
        ] {
            assert!(p.is_finite(), "percentile must be finite, got {p}");
            assert_eq!(p, 0.0, "no successes must quote 0.0, got {p}");
        }
        assert_eq!(batch.goodput_qps, 0.0);
        assert_eq!(dev.memory().in_use(), 0);
    }

    #[test]
    fn precompiled_batch_matches_internal_compilation() {
        let a = gen::micro_input(20_000, 52);
        let plan = chain(a.schema().clone(), 3);
        let bindings = [("t", &a)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &plan,
                bindings: &bindings,
            },
            BatchQuery {
                name: "qb",
                plan: &plan,
                bindings: &bindings,
            },
        ];
        let cfg = WeaverConfig::default();
        let compiled = vec![compile(&plan, &cfg).unwrap(), compile(&plan, &cfg).unwrap()];
        let mut d1 = device();
        let pre = execute_batch_compiled_with_policy(
            &queries,
            &compiled,
            &mut d1,
            &cfg,
            &RetryPolicy::default(),
        )
        .unwrap();
        let mut d2 = device();
        let auto = execute_batch(&queries, &mut d2, &cfg).unwrap();
        assert_eq!(pre.queries.len(), auto.queries.len());
        for (p, a) in pre.queries.iter().zip(&auto.queries) {
            assert_eq!(p.outputs, a.outputs);
            assert_eq!(p.outcome, a.outcome);
        }
        assert_eq!(pre.makespan_seconds, auto.makespan_seconds);

        // Length mismatch is a caller bug, reported as a plan error.
        let err = execute_batch_compiled_with_policy(
            &queries,
            &compiled[..1],
            &mut device(),
            &cfg,
            &RetryPolicy::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let mut dev = device();
        let batch = execute_batch(&[], &mut dev, &WeaverConfig::default()).unwrap();
        assert!(batch.queries.is_empty());
        assert_eq!(batch.makespan_seconds, 0.0);
        assert_eq!(batch.throughput_qps, 0.0);
        assert_eq!(batch.goodput_qps, 0.0);
        assert_eq!(batch.waves, 0);
    }

    #[test]
    fn fused_batch_beats_unfused_batch() {
        let a = gen::micro_input(80_000, 47);
        let b = gen::micro_input(80_000, 48);
        let pa = chain(a.schema().clone(), 3);
        let pb = chain(b.schema().clone(), 3);
        let ba = [("t", &a)];
        let bb = [("t", &b)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "qb",
                plan: &pb,
                bindings: &bb,
            },
        ];
        let mut d1 = device();
        let fused = execute_batch(&queries, &mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = execute_batch(&queries, &mut d2, &WeaverConfig::default().baseline()).unwrap();
        assert!(
            fused.makespan_seconds < base.makespan_seconds,
            "{} vs {}",
            fused.makespan_seconds,
            base.makespan_seconds
        );
        assert!(fused.throughput_qps > base.throughput_qps);
        for (f, b) in fused.queries.iter().zip(&base.queries) {
            assert_eq!(f.outputs, b.outputs);
        }
    }
}
