//! Multi-query stream scheduling: concurrent plans on one shared device.
//!
//! The paper measures fusion one query at a time; this module is the regime
//! where those wins compound. [`execute_batch`] takes a batch of independent
//! queries, admits them for *concurrent* residence ([`crate::admit_batch`]),
//! and schedules every (possibly fused) step of every query on the shared
//! device's stream/event model:
//!
//! * **Stream assignment** — each step of each query gets its own CUDA-style
//!   stream. Streams are created slot-major (step 0 of every query, then
//!   step 1, …) so the round-robin compute-engine assignment of
//!   [`kw_gpu_sim::StreamModel`] spreads *queries* — not steps of one
//!   query — across engines first.
//! * **Event edges** — a step waits on `record_event`/`wait_event` edges
//!   from the steps that produce its inputs and from the uploads of the
//!   base relations it consumes; nothing else orders it. Independent
//!   queries therefore overlap wherever the engines allow: one query's
//!   uploads hide under another's kernels, downloads under later compute.
//! * **Fairness** — work is *issued* slot-major round-robin across queries.
//!   Engines are FIFO in issue order (Fermi exposes a single hardware work
//!   queue), so round-robin issue is what keeps one long query from
//!   starving the rest; it also means a stalled step can head-of-line
//!   block its engine, exactly as the paper's hardware would.
//!
//! Per-query computation runs ahead of the replay on a scratch device fork
//! (the same replay idiom as [`crate::execute_chunked`]): real relations in,
//! real relations out, per-step compute costs measured. The shared device
//! then sees each step as one `compute_on` span plus real streamed boundary
//! transfers, so its span log still reconciles ([`kw_gpu_sim::reconcile`])
//! and its stream graph — not a side formula — produces the batch makespan,
//! per-query latencies and throughput of [`BatchReport`].

use std::collections::{BTreeMap, BTreeSet};

use kw_gpu_sim::{
    Device, Direction, EventId, Histogram, SimStats, Span, SpanKind, StreamId, StreamOp,
};
use kw_relational::Relation;

use crate::admission::{admit_batch, BatchAdmission, BatchAdmissionQuery};
use crate::{
    compile, CompiledPlan, ExecMode, NodeId, PlanNode, QueryPlan, Result, WeaverConfig, WeaverError,
};

/// One query of a batch: a plan, its input bindings, and a name for
/// reports and trace provenance.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// Name used in reports and span provenance (`q{i}:{name}` frames).
    pub name: &'a str,
    /// The plan to execute.
    pub plan: &'a QueryPlan,
    /// Named input relations, as for [`crate::execute_plan`].
    pub bindings: &'a [(&'a str, &'a Relation)],
}

/// Per-query results and metrics of a batched execution.
#[derive(Debug)]
pub struct BatchQueryReport {
    /// The query's name, as given in [`BatchQuery`].
    pub name: String,
    /// Relations of the query's marked plan outputs.
    pub outputs: BTreeMap<NodeId, Relation>,
    /// Seconds from batch start until this query's last scheduled
    /// operation finished on the shared device.
    pub latency_seconds: f64,
    /// GPU computation seconds charged by this query's kernels.
    pub gpu_seconds: f64,
    /// PCIe seconds of this query's boundary transfers.
    pub pcie_seconds: f64,
    /// Number of (possibly fused) operators scheduled.
    pub operator_count: usize,
    /// The fusion sets the compiler chose.
    pub fusion_sets: Vec<Vec<NodeId>>,
    /// Peak device bytes of the query's working set (what the shared
    /// device must reserve for it while it is in flight).
    pub peak_device_bytes: u64,
}

/// What a batched execution did on the shared device.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query results, in batch order.
    pub queries: Vec<BatchQueryReport>,
    /// Shared-device makespan of the whole batch, seconds: from batch
    /// start to the last operation's end on the stream/event graph.
    pub makespan_seconds: f64,
    /// The same scheduled work with no overlap at all — the sum of every
    /// operation's duration. An upper bound on `makespan_seconds`.
    pub serialized_seconds: f64,
    /// Queries completed per second of makespan (0 for an empty batch).
    pub throughput_qps: f64,
    /// Median per-query latency, from the log-bucketed latency histogram
    /// (the quantile resolves to its bucket's upper bound, so
    /// deterministic and byte-stable; 0 for an empty batch).
    pub latency_p50_seconds: f64,
    /// 95th-percentile per-query latency (same histogram; an upper bound
    /// on the true p95 within its power-of-two bucket).
    pub latency_p95_seconds: f64,
    /// 99th-percentile per-query latency (same histogram).
    pub latency_p99_seconds: f64,
    /// Busy seconds per hardware engine over this batch's window, keyed by
    /// engine name (`compute{i}`, `copy.h2d`, `copy.d2h`).
    pub engine_busy_seconds: BTreeMap<String, f64>,
    /// Per-engine busy time as a fraction of the batch makespan — the
    /// copy-compute overlap picture the stream model exists to produce.
    pub engine_utilization: BTreeMap<String, f64>,
    /// Roofline-style bottleneck attribution for the batch, with one
    /// operator row per query scope (see [`crate::ProfileReport`]).
    pub profile: crate::ProfileReport,
    /// The batch admission verdict (per-query peaks, concurrent footprint).
    pub admission: BatchAdmission,
}

/// Per-step compute cost measured on the scratch run: the merged
/// kernel-side [`SimStats`] delta and its duration in cycles.
struct StepCompute {
    delta: SimStats,
    cycles: u64,
}

/// Group the scratch run's kernel spans by the `step{i}:` provenance frame
/// the executor pushes, yielding one compute-only delta per compiled step.
fn step_computes(spans: &[Span], steps: usize) -> Vec<StepCompute> {
    let mut out: Vec<StepCompute> = (0..steps)
        .map(|_| StepCompute {
            delta: SimStats::default(),
            cycles: 0,
        })
        .collect();
    for span in spans {
        if span.kind != SpanKind::Kernel {
            continue;
        }
        let Some(rest) = span.provenance.strip_prefix("step") else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let Ok(idx) = digits.parse::<usize>() else {
            continue;
        };
        if let Some(slot) = out.get_mut(idx) {
            slot.delta.merge(&span.delta);
        }
    }
    for slot in &mut out {
        slot.cycles = slot.delta.gpu_cycles;
    }
    out
}

/// Execute a batch of independent queries concurrently on one shared
/// device.
///
/// Each query's relational work runs ahead on a scratch device fork (real
/// data, per-step costs measured), then every step is scheduled on the
/// shared device — one stream per step, `record_event`/`wait_event` edges
/// for data dependences, boundary transfers on the H2D/D2H copy engines —
/// and the stream graph's makespan becomes the batch wallclock. Outputs are
/// byte-identical to solo execution by construction: stream interleaving
/// decides *when* work runs, never what it computes.
///
/// # Errors
///
/// Returns [`WeaverError::Admission`] when the batch's concurrent resident
/// footprint does not fit the device, and propagates compilation, binding
/// and device errors (injected faults strike scratch runs and replayed
/// transfers alike).
///
/// # Examples
///
/// ```
/// use kw_core::{execute_batch, BatchQuery, QueryPlan, WeaverConfig};
/// use kw_gpu_sim::{Device, DeviceConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{gen, CmpOp, Predicate, Value};
///
/// let input = gen::micro_input(10_000, 11);
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", input.schema().clone());
/// let s = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1 << 31)) },
///     &[t],
/// )?;
/// plan.mark_output(s);
///
/// let bindings = [("t", &input)];
/// let queries = [
///     BatchQuery { name: "q0", plan: &plan, bindings: &bindings },
///     BatchQuery { name: "q1", plan: &plan, bindings: &bindings },
/// ];
/// let mut device = Device::new(DeviceConfig::fermi_c2050());
/// let batch = execute_batch(&queries, &mut device, &WeaverConfig::default())?;
/// assert_eq!(batch.queries.len(), 2);
/// assert!(batch.makespan_seconds <= batch.serialized_seconds);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn execute_batch(
    queries: &[BatchQuery<'_>],
    device: &mut Device,
    config: &WeaverConfig,
) -> Result<BatchReport> {
    let compiled: Vec<CompiledPlan> = queries
        .iter()
        .map(|q| compile(q.plan, config))
        .collect::<Result<_>>()?;

    // Admission: every query stays resident for its whole flight, so the
    // batch must fit the *sum* of resident peaks — there is no cheaper
    // rung for a concurrent batch to degrade to.
    let free = device
        .memory()
        .capacity()
        .saturating_sub(device.memory().in_use());
    let admission_input: Vec<BatchAdmissionQuery<'_>> = queries
        .iter()
        .zip(&compiled)
        .map(|(q, c)| (q.plan, c, q.bindings))
        .collect();
    let admission = admit_batch(&admission_input, free)?;

    // Phase 1: run every query on a scratch fork (derived fault streams
    // keep injected faults striking inside query execution) to obtain its
    // outputs and measured per-step compute costs.
    let mut scratch_reports = Vec::with_capacity(queries.len());
    for (q, c) in queries.iter().zip(&compiled) {
        let mut cfg = *config;
        cfg.mode = ExecMode::Resident;
        let mut scratch = device.fork_scratch();
        let report = crate::execute_compiled(q.plan, c, q.bindings, &mut scratch, &cfg)?;
        let computes = step_computes(&report.spans, c.steps.len());
        let peak = scratch.memory().peak();
        scratch_reports.push((report, computes, peak));
    }

    // Phase 2: schedule the batch on the shared device. Streams are
    // created slot-major so the engine round-robin spreads queries first.
    let batch_start = device.sync_streams();
    let ops_before = device.streams().ops().len();
    let max_steps = compiled.iter().map(|c| c.steps.len()).max().unwrap_or(0);
    let mut step_streams: Vec<Vec<StreamId>> = queries.iter().map(|_| Vec::new()).collect();
    for slot in 0..max_steps {
        for (qi, c) in compiled.iter().enumerate() {
            if slot < c.steps.len() {
                step_streams[qi].push(device.create_stream());
            }
        }
    }

    // Per-query issue state.
    struct QState {
        /// `node -> producing step index` for intermediate results.
        producer: BTreeMap<NodeId, usize>,
        /// Upload event per base relation; `None` for zero-byte uploads
        /// (skipped outright, nothing to wait for).
        uploaded: BTreeMap<NodeId, Option<(StreamId, EventId)>>,
        /// Completion event per issued step.
        step_done: Vec<Option<EventId>>,
        pcie_seconds: f64,
    }
    let mut states: Vec<QState> = compiled
        .iter()
        .map(|c| {
            let mut producer = BTreeMap::new();
            for (i, step) in c.steps.iter().enumerate() {
                for &o in &step.outputs {
                    producer.insert(o, i);
                }
            }
            QState {
                producer,
                uploaded: BTreeMap::new(),
                step_done: vec![None; c.steps.len()],
                pcie_seconds: 0.0,
            }
        })
        .collect();

    for slot in 0..max_steps {
        for (qi, q) in queries.iter().enumerate() {
            let Some(step) = compiled[qi].steps.get(slot) else {
                continue;
            };
            let stream = step_streams[qi][slot];
            let state = &mut states[qi];
            let (report, computes, _) = &scratch_reports[qi];

            // Every span this step emits carries the query's identity, so
            // a batch trace shows which query each overlapped op belongs to.
            device.push_scope(format!("q{qi}:{}", q.name));
            let issued = (|device: &mut Device| -> Result<()> {
                // Upload base relations on their first consumer's stream.
                // Zero-byte relations are skipped outright (no fabricated
                // per-transfer latency), mirroring chunked execution.
                for &node in &step.inputs {
                    if !matches!(q.plan.node(node), PlanNode::Input { .. })
                        || state.uploaded.contains_key(&node)
                    {
                        continue;
                    }
                    let name = match q.plan.node(node) {
                        PlanNode::Input { name, .. } => name,
                        PlanNode::Operator { .. } => unreachable!("checked above"),
                    };
                    let bytes = q
                        .bindings
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, r)| r.byte_size() as u64)
                        .ok_or_else(|| {
                            WeaverError::binding(format!("no relation bound to '{name}'"))
                        })?;
                    let ev = if bytes > 0 {
                        state.pcie_seconds +=
                            device.transfer_on(stream, Direction::HostToDevice, bytes)?;
                        Some((stream, device.record_event(stream)?))
                    } else {
                        None
                    };
                    state.uploaded.insert(node, ev);
                }

                // Dependence edges: producing steps and cross-stream
                // uploads must complete before this step's kernels run.
                // Same-stream uploads are already ordered by stream FIFO.
                for &node in &step.inputs {
                    if let Some(&p) = state.producer.get(&node) {
                        let ev = state.step_done[p].ok_or_else(|| {
                            WeaverError::plan(format!(
                                "step input {node} scheduled before its producer"
                            ))
                        })?;
                        device.wait_event(stream, ev)?;
                    } else if let Some(&Some((src, ev))) = state.uploaded.get(&node) {
                        if src != stream {
                            device.wait_event(stream, ev)?;
                        }
                    }
                }

                let compute = &computes[slot];
                device.compute_on(
                    stream,
                    step.op.label.clone(),
                    &compute.delta,
                    compute.cycles,
                )?;

                // Marked plan outputs return to the host as soon as their
                // producing step finishes; the download then overlaps
                // whatever the engines run next.
                for &node in &step.outputs {
                    if !q.plan.outputs().contains(&node) {
                        continue;
                    }
                    let bytes = report.outputs[&node].byte_size() as u64;
                    if bytes > 0 {
                        state.pcie_seconds +=
                            device.transfer_on(stream, Direction::DeviceToHost, bytes)?;
                    }
                }
                state.step_done[slot] = Some(device.record_event(stream)?);
                Ok(())
            })(device);
            device.pop_scope();
            if let Err(e) = issued {
                // Drain in-flight work so a retry starts from a settled
                // clock, exactly like the chunked replay's error path.
                device.sync_streams();
                return Err(e);
            }
        }
    }

    // Read the batch off the stream graph: makespan from the unified
    // cycle clock, per-query latency from each query's last operation,
    // serialized cost as the overlap-free sum of every op's duration.
    let end_cycles = device.sync_streams();
    let makespan_cycles = end_cycles - batch_start;
    let makespan_seconds = device.config().cycles_to_seconds(makespan_cycles);
    // Copy the batch window's ops out of the device so metrics publication
    // below can borrow it mutably.
    let batch_ops: Vec<StreamOp> = device.streams().ops()[ops_before..].to_vec();
    let serialized_cycles: u64 = batch_ops.iter().map(|op| op.duration()).sum();
    let serialized_seconds = device.config().cycles_to_seconds(serialized_cycles);

    let mut reports = Vec::with_capacity(queries.len());
    let mut latency_hist = Histogram::default();
    for (qi, q) in queries.iter().enumerate() {
        let streams: BTreeSet<StreamId> = step_streams[qi].iter().copied().collect();
        let last_end = batch_ops
            .iter()
            .filter(|op| streams.contains(&op.stream))
            .map(|op| op.end_cycle)
            .max()
            .unwrap_or(batch_start);
        let (report, computes, peak) = &scratch_reports[qi];
        let gpu_cycles: u64 = computes.iter().map(|c| c.cycles).sum();
        let latency_cycles = last_end - batch_start;
        latency_hist.observe(latency_cycles);
        device
            .metrics_mut()
            .observe("kw_batch_query_latency_cycles", latency_cycles);
        reports.push(BatchQueryReport {
            name: q.name.to_string(),
            outputs: report.outputs.clone(),
            latency_seconds: device.config().cycles_to_seconds(latency_cycles),
            gpu_seconds: device.config().cycles_to_seconds(gpu_cycles),
            pcie_seconds: states[qi].pcie_seconds,
            operator_count: compiled[qi].steps.len(),
            fusion_sets: compiled[qi].fusion_sets.clone(),
            peak_device_bytes: *peak,
        });
    }
    device.metrics_mut().inc("kw_batches_total", 1);
    device
        .metrics_mut()
        .inc("kw_batch_queries_total", queries.len() as u64);

    let throughput_qps = if makespan_seconds > 0.0 {
        queries.len() as f64 / makespan_seconds
    } else {
        0.0
    };

    // Per-engine busy time over this batch's window (the device-lifetime
    // `engine_busy()` would include any pre-batch streamed work).
    let mut engine_busy_cycles: BTreeMap<String, u64> = BTreeMap::new();
    for op in batch_ops {
        *engine_busy_cycles.entry(op.engine.name()).or_insert(0) += op.duration();
    }
    let engine_busy_seconds: BTreeMap<String, f64> = engine_busy_cycles
        .iter()
        .map(|(name, &c)| (name.clone(), device.config().cycles_to_seconds(c)))
        .collect();
    let engine_utilization: BTreeMap<String, f64> = engine_busy_seconds
        .iter()
        .map(|(name, &busy)| {
            let util = if makespan_seconds > 0.0 {
                busy / makespan_seconds
            } else {
                0.0
            };
            (name.clone(), util)
        })
        .collect();

    let profile = crate::ProfileReport::from_spans(
        device.spans(),
        device.stats(),
        device.config(),
        device.config().cycles_to_seconds(end_cycles),
    );

    Ok(BatchReport {
        queries: reports,
        makespan_seconds,
        serialized_seconds,
        throughput_qps,
        latency_p50_seconds: device
            .config()
            .cycles_to_seconds(latency_hist.quantile(0.50)),
        latency_p95_seconds: device
            .config()
            .cycles_to_seconds(latency_hist.quantile(0.95)),
        latency_p99_seconds: device
            .config()
            .cycles_to_seconds(latency_hist.quantile(0.99)),
        engine_busy_seconds,
        engine_utilization,
        profile,
        admission,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute_plan;
    use kw_gpu_sim::DeviceConfig;
    use kw_primitives::RaOp;
    use kw_relational::{gen, CmpOp, Predicate, Value};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    fn sel(attr: usize, v: u32) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(v)),
        }
    }

    fn chain(schema: kw_relational::Schema, depth: usize) -> QueryPlan {
        let mut p = QueryPlan::new();
        let mut cur = p.add_input("t", schema);
        for a in 0..depth {
            cur = p.add_op(sel(a % 4, u32::MAX / 2), &[cur]).unwrap();
        }
        p.mark_output(cur);
        p
    }

    #[test]
    fn batch_outputs_match_solo_execution() {
        let a = gen::micro_input(20_000, 41);
        let b = gen::micro_input(30_000, 42);
        let pa = chain(a.schema().clone(), 2);
        let pb = chain(b.schema().clone(), 3);
        let ba = [("t", &a)];
        let bb = [("t", &b)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "qb",
                plan: &pb,
                bindings: &bb,
            },
        ];
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        for (q, r) in queries.iter().zip(&batch.queries) {
            let mut solo_dev = device();
            let solo =
                execute_plan(q.plan, q.bindings, &mut solo_dev, &WeaverConfig::default()).unwrap();
            assert_eq!(r.outputs, solo.outputs, "{}", r.name);
        }
    }

    #[test]
    fn batch_beats_serial_and_respects_engine_bounds() {
        let a = gen::micro_input(100_000, 43);
        let b = gen::micro_input(100_000, 44);
        let pa = chain(a.schema().clone(), 2);
        let pb = chain(b.schema().clone(), 2);
        let ba = [("t", &a)];
        let bb = [("t", &b)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "qb",
                plan: &pb,
                bindings: &bb,
            },
        ];
        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        // Solo makespans on fresh devices.
        let mut solo_sum = 0.0;
        for q in &queries {
            let mut d = device();
            let solo = execute_batch(&[*q], &mut d, &WeaverConfig::default()).unwrap();
            solo_sum += solo.makespan_seconds;
        }
        assert!(
            batch.makespan_seconds < solo_sum,
            "sharing the device must beat serial: {} vs {}",
            batch.makespan_seconds,
            solo_sum
        );
        // Lower bound: the busiest engine's busy time.
        let busiest = *dev.streams().engine_busy().values().max().unwrap();
        let floor = dev.config().cycles_to_seconds(busiest);
        assert!(batch.makespan_seconds >= floor - 1e-15);
        assert!(batch.makespan_seconds <= batch.serialized_seconds + 1e-15);
        assert!(batch.throughput_qps > 0.0);
        // Latencies end inside the batch window.
        for r in &batch.queries {
            assert!(r.latency_seconds > 0.0);
            assert!(r.latency_seconds <= batch.makespan_seconds + 1e-15);
        }
    }

    #[test]
    fn batch_trace_reconciles_and_carries_query_provenance() {
        let a = gen::micro_input(30_000, 45);
        let pa = chain(a.schema().clone(), 2);
        let ba = [("t", &a)];
        let queries = [
            BatchQuery {
                name: "alpha",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "beta",
                plan: &pa,
                bindings: &ba,
            },
        ];
        let mut dev = device();
        execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
        let provs: Vec<&str> = dev.spans().iter().map(|s| s.provenance.as_str()).collect();
        assert!(provs.iter().any(|p| p.starts_with("q0:alpha")), "{provs:?}");
        assert!(provs.iter().any(|p| p.starts_with("q1:beta")), "{provs:?}");
    }

    #[test]
    fn oversubscribed_batch_is_rejected_at_admission() {
        let input = gen::micro_input(200_000, 46);
        let plan = chain(input.schema().clone(), 2);
        let bindings = [("t", &input)];
        let queries: Vec<BatchQuery<'_>> = (0..64)
            .map(|_| BatchQuery {
                name: "q",
                plan: &plan,
                bindings: &bindings,
            })
            .collect();
        let mut dev = Device::new(DeviceConfig::tiny());
        let err = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap_err();
        assert!(matches!(err, WeaverError::Admission { .. }), "{err}");
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let mut dev = device();
        let batch = execute_batch(&[], &mut dev, &WeaverConfig::default()).unwrap();
        assert!(batch.queries.is_empty());
        assert_eq!(batch.makespan_seconds, 0.0);
        assert_eq!(batch.throughput_qps, 0.0);
    }

    #[test]
    fn fused_batch_beats_unfused_batch() {
        let a = gen::micro_input(80_000, 47);
        let b = gen::micro_input(80_000, 48);
        let pa = chain(a.schema().clone(), 3);
        let pb = chain(b.schema().clone(), 3);
        let ba = [("t", &a)];
        let bb = [("t", &b)];
        let queries = [
            BatchQuery {
                name: "qa",
                plan: &pa,
                bindings: &ba,
            },
            BatchQuery {
                name: "qb",
                plan: &pb,
                bindings: &bb,
            },
        ];
        let mut d1 = device();
        let fused = execute_batch(&queries, &mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = execute_batch(&queries, &mut d2, &WeaverConfig::default().baseline()).unwrap();
        assert!(
            fused.makespan_seconds < base.makespan_seconds,
            "{} vs {}",
            fused.makespan_seconds,
            base.makespan_seconds
        );
        assert!(fused.throughput_qps > base.throughput_qps);
        for (f, b) in fused.queries.iter().zip(&base.queries) {
            assert_eq!(f.outputs, b.outputs);
        }
    }
}
