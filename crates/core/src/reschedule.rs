//! Operator rescheduling (the paper's Section 6 closing remark): "a more
//! complicated fusion framework can use invariant analysis to reschedule
//! operators ... if switching the order of SORT and SELECT of Figure 9(c)
//! does not alter the final result, the switch brings more opportunity to
//! optimize since SELECT can thus fuse with the operators before SORT."
//!
//! SELECT is order-insensitive, so `σ_p(sort(R)) = sort(σ_{p'}(R))` always
//! holds once the predicate's attribute references are remapped through the
//! sort's permutation. Hoisting the SELECT (a) shrinks the SORT's input and
//! (b) moves the SELECT into the fusion region *below* the SORT boundary.

use std::collections::BTreeMap;

use kw_primitives::RaOp;

use crate::{NodeId, PlanNode, QueryPlan, Result, WeaverError};

/// A rescheduled plan plus the node mapping from the original.
#[derive(Debug, Clone)]
pub struct Rescheduled {
    /// The transformed plan.
    pub plan: QueryPlan,
    /// Maps every original node to its equivalent in the new plan.
    pub node_map: BTreeMap<NodeId, NodeId>,
    /// How many SELECT-over-SORT pairs were swapped.
    pub swaps: usize,
}

/// Hoist SELECTs above SORTs wherever the SORT has no other consumer and is
/// not itself a plan output. Applied to fixpoint.
///
/// # Errors
///
/// Returns [`WeaverError`] if the plan is invalid.
///
/// # Examples
///
/// ```
/// use kw_core::{reschedule, QueryPlan};
/// use kw_primitives::RaOp;
/// use kw_relational::{Predicate, Schema};
///
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", Schema::uniform_u32(2));
/// let srt = plan.add_op(RaOp::Sort { attrs: vec![1] }, &[t])?;
/// let sel = plan.add_op(RaOp::Select { pred: Predicate::True }, &[srt])?;
/// plan.mark_output(sel);
///
/// let r = reschedule(&plan)?;
/// assert_eq!(r.swaps, 1); // the select now runs before (and shrinks) the sort
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn reschedule(plan: &QueryPlan) -> Result<Rescheduled> {
    plan.validate()?;
    let mut current = plan.clone();
    let mut node_map: BTreeMap<NodeId, NodeId> = plan.node_ids().map(|n| (n, n)).collect();
    let mut total_swaps = 0;

    loop {
        let (next, step_map, swaps) = hoist_once(&current)?;
        if swaps == 0 {
            break;
        }
        total_swaps += swaps;
        for v in node_map.values_mut() {
            *v = step_map[v];
        }
        current = next;
    }

    Ok(Rescheduled {
        plan: current,
        node_map,
        swaps: total_swaps,
    })
}

/// One rewrite pass. Returns the new plan, the old→new node map, and the
/// number of swaps performed.
fn hoist_once(plan: &QueryPlan) -> Result<(QueryPlan, BTreeMap<NodeId, NodeId>, usize)> {
    let mut out = QueryPlan::new();
    let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut swaps = 0;

    for id in plan.node_ids() {
        match plan.node(id) {
            PlanNode::Input { name, schema } => {
                let n = out.add_input(name.clone(), schema.clone());
                map.insert(id, n);
            }
            PlanNode::Operator { op, inputs } => {
                // Pattern: SELECT whose only producer is a single-consumer,
                // non-output SORT.
                if let (RaOp::Select { pred }, [sort_id]) = (op, inputs.as_slice()) {
                    if let PlanNode::Operator {
                        op: RaOp::Sort { attrs },
                        inputs: sort_inputs,
                    } = plan.node(*sort_id)
                    {
                        let only_consumer = plan.consumers(*sort_id) == vec![id];
                        if only_consumer && !plan.is_output(*sort_id) {
                            let base = sort_inputs[0];
                            // Remap the predicate through the sort's
                            // permutation: sorted attribute j is original
                            // attribute order[j].
                            let arity = plan.schema(base).arity();
                            let mut order: Vec<usize> = attrs.clone();
                            for a in 0..arity {
                                if !attrs.contains(&a) {
                                    order.push(a);
                                }
                            }
                            let remap: Vec<Option<usize>> =
                                order.iter().map(|&o| Some(o)).collect();
                            if let Some(pred2) = pred.remap_attrs(&remap) {
                                let new_sel =
                                    out.add_op(RaOp::Select { pred: pred2 }, &[map[&base]])?;
                                let new_sort = out.add_op(
                                    RaOp::Sort {
                                        attrs: attrs.clone(),
                                    },
                                    &[new_sel],
                                )?;
                                // The old sort's result no longer exists as
                                // a distinct node; point it at the new sort
                                // (it had no other consumers).
                                map.insert(*sort_id, new_sort);
                                map.insert(id, new_sort);
                                swaps += 1;
                                continue;
                            }
                        }
                    }
                }
                // Default: copy the operator. Skip sorts that were already
                // consumed by a swap above.
                if map.contains_key(&id) {
                    continue;
                }
                if matches!(op, RaOp::Sort { .. })
                    && plan
                        .consumers(id)
                        .iter()
                        .all(|c| is_hoisted_select(plan, *c))
                    && !plan.is_output(id)
                    && !plan.consumers(id).is_empty()
                {
                    // This sort will be re-created by its consuming select;
                    // defer (handled when the select is visited).
                    continue;
                }
                let new_inputs: Vec<NodeId> = inputs
                    .iter()
                    .map(|p| {
                        map.get(p).copied().ok_or_else(|| {
                            WeaverError::plan(format!("producer {p} not yet mapped"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let n = out.add_op(op.clone(), &new_inputs)?;
                map.insert(id, n);
            }
        }
    }

    for &o in plan.outputs() {
        out.mark_output(map[&o]);
    }
    Ok((out, map, swaps))
}

/// Whether `id` is a SELECT over a single-consumer, non-output SORT (the
/// hoist pattern).
fn is_hoisted_select(plan: &QueryPlan, id: NodeId) -> bool {
    if let PlanNode::Operator {
        op: RaOp::Select { .. },
        inputs,
    } = plan.node(id)
    {
        if let [sort_id] = inputs.as_slice() {
            if let PlanNode::Operator {
                op: RaOp::Sort { .. },
                ..
            } = plan.node(*sort_id)
            {
                return plan.consumers(*sort_id) == vec![id] && !plan.is_output(*sort_id);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::{CmpOp, Predicate, Schema, Value};

    fn sel(attr: usize) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(100)),
        }
    }

    #[test]
    fn select_hoisted_above_sort() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(3));
        let srt = p.add_op(RaOp::Sort { attrs: vec![2] }, &[t]).unwrap();
        // After sort the layout is (a2, a0, a1); select on position 1 = a0.
        let s = p.add_op(sel(1), &[srt]).unwrap();
        p.mark_output(s);

        let r = reschedule(&p).unwrap();
        assert_eq!(r.swaps, 1);
        // New plan: select (on original attribute 0) then sort.
        let ops: Vec<&RaOp> = r.plan.operator_nodes().map(|(_, op, _)| op).collect();
        assert!(matches!(ops[0], RaOp::Select { .. }));
        assert!(matches!(ops[1], RaOp::Sort { .. }));
        if let RaOp::Select { pred } = ops[0] {
            assert_eq!(pred.max_attr(), Some(0), "predicate remapped: {pred}");
        }
        r.plan.validate().unwrap();
    }

    #[test]
    fn chain_of_selects_hoists_to_fixpoint() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(3));
        let srt = p.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        let s1 = p.add_op(sel(0), &[srt]).unwrap();
        let s2 = p.add_op(sel(2), &[s1]).unwrap();
        p.mark_output(s2);

        let r = reschedule(&p).unwrap();
        assert_eq!(r.swaps, 2);
        let ops: Vec<&RaOp> = r.plan.operator_nodes().map(|(_, op, _)| op).collect();
        assert!(matches!(ops[0], RaOp::Select { .. }));
        assert!(matches!(ops[1], RaOp::Select { .. }));
        assert!(matches!(ops[2], RaOp::Sort { .. }));
    }

    #[test]
    fn sort_with_other_consumers_not_touched() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let srt = p.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        let s = p.add_op(sel(0), &[srt]).unwrap();
        p.mark_output(s);
        p.mark_output(srt); // the sorted relation itself leaves the plan
        let r = reschedule(&p).unwrap();
        assert_eq!(r.swaps, 0);
        assert_eq!(r.plan, p);
    }

    #[test]
    fn node_map_tracks_outputs() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let srt = p.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        let s = p.add_op(sel(0), &[srt]).unwrap();
        p.mark_output(s);
        let r = reschedule(&p).unwrap();
        let mapped = r.node_map[&s];
        assert!(r.plan.is_output(mapped));
    }
}
