//! Chunk-strategy selection: which out-of-core decomposition, if any, lets
//! a plan stream through a device smaller than its inputs.
//!
//! The chunked rung of the degradation ladder used to admit only
//! *elementwise* plans (row-slicing distributes over SELECT/PROJECT/MAP but
//! changes a join's or aggregate's answer). This pass generalizes the rung
//! into three strategies, selected from the plan's operator mix and
//! [`consumer_class`]/[`DependenceClass`] structure:
//!
//! * [`ChunkStrategy::RowSlice`] — every operator thread-dependent: slice
//!   every input uniformly by row index (the original chunked mode).
//! * [`ChunkStrategy::HashPartition`] — co-partition every input by a hash
//!   of its leading key word into P buckets and run the whole plan per
//!   bucket. Sound when every operator preserves the bucket invariant
//!   ("all rows of a relation hash to this bucket"): key-matching operators
//!   (JOIN, SEMI/ANTI-JOIN, set ops) only combine key-equal rows, which
//!   share word 0 bit-for-bit, so every output row stays in its bucket and
//!   bucket-local results are disjoint by construction.
//! * [`ChunkStrategy::PartialAggregate`] — a thread-dependent prefix feeding
//!   one final AGGREGATE: row-slice the inputs, aggregate each slice into
//!   *partials*, then merge the partials under the aggregate's
//!   associativity (COUNT/SUM add, MIN/MAX compare, AVG decomposes into
//!   SUM + COUNT).
//!
//! Plans with none of these shapes (a full SORT, a cross PRODUCT, an
//! aggregate sandwiched between joins) genuinely cannot stream, and the
//! ladder reports [`crate::LadderStop::NonElementwiseBlocksChunking`].

use std::collections::BTreeMap;

use kw_primitives::{consumer_class, DependenceClass, RaOp};
use kw_relational::ops::AggFn;
use kw_relational::{compare_words, AttrType, Relation, Schema, Value};

use crate::{NodeId, PlanNode, QueryPlan, Result, WeaverError};

/// How the chunked executor decomposes a plan into device-sized pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkStrategy {
    /// Slice every input uniformly by row index (elementwise plans only).
    RowSlice,
    /// Co-partition every input by key hash into buckets and run the plan
    /// per bucket; bucket outputs are disjoint and concatenate.
    HashPartition,
    /// Row-slice the inputs, aggregate each slice into partials, and merge
    /// the partials under the aggregate's associativity.
    PartialAggregate,
}

impl std::fmt::Display for ChunkStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkStrategy::RowSlice => write!(f, "row-slice"),
            ChunkStrategy::HashPartition => write!(f, "hash-partition"),
            ChunkStrategy::PartialAggregate => write!(f, "partial-aggregate"),
        }
    }
}

/// Choose the chunk strategy for `plan`, or `None` if no decomposition
/// preserves its answer (e.g. a full sort).
///
/// Selection order is cheapest-first: row-slicing needs no repartitioning
/// pass, hash partitioning needs one hash scan per input, partial
/// aggregation needs a recompile plus a host-side merge.
pub fn select_chunk_strategy(plan: &QueryPlan) -> Option<ChunkStrategy> {
    if plan
        .operator_nodes()
        .all(|(_, op, _)| consumer_class(op) == DependenceClass::Thread)
    {
        return Some(ChunkStrategy::RowSlice);
    }
    if hash_partitionable(plan) {
        return Some(ChunkStrategy::HashPartition);
    }
    if mergeable_aggregate(plan).is_some() {
        return Some(ChunkStrategy::PartialAggregate);
    }
    None
}

/// Whether every operator of `plan` preserves the bucket invariant under a
/// word-0 hash partition of its inputs.
///
/// | operator | bucket-safe because |
/// |---|---|
/// | SELECT, UNIQUE | output rows are (bit-identical) input rows |
/// | PROJECT/MAP, `key_arity >= 1` | key attributes pass through unchanged |
/// | JOIN/SEMI/ANTI (`key_len >= 1`) | matches are key-equal, so word 0 is shared |
/// | UNION/INTERSECT/DIFFERENCE | match and dedup by key (`key_arity >= 1`) |
/// | PRODUCT | **no** — pairs rows across buckets |
/// | SORT | **no** — global order crosses buckets |
/// | AGGREGATE | **no** — groups cross buckets (see partial-aggregate) |
///
/// Additionally every node's leading attribute must not be F32: the hash
/// partitions by bit pattern, but key *equality* compares floats, so
/// `+0.0`/`-0.0` (equal keys, different bits) could land matching rows in
/// different buckets.
fn hash_partitionable(plan: &QueryPlan) -> bool {
    let ops_safe = plan.operator_nodes().all(|(_, op, _)| match op {
        RaOp::Select { .. } | RaOp::Unique => true,
        RaOp::Project { key_arity, .. } | RaOp::Map { key_arity, .. } => *key_arity >= 1,
        // `join_schema` structurally requires `key_len >= 1`.
        RaOp::Join { .. } | RaOp::SemiJoin { .. } | RaOp::AntiJoin { .. } => true,
        RaOp::Union | RaOp::Intersect | RaOp::Difference => true,
        RaOp::Product | RaOp::Sort { .. } | RaOp::Aggregate { .. } => false,
    });
    if !ops_safe {
        return false;
    }
    plan.node_ids().all(|id| {
        let schema = plan.schema(id);
        // Set ops match by key and keep their input schema, so the node's
        // own key arity is its match width.
        let keyed_matcher = match plan.node(id) {
            PlanNode::Operator { op, .. } => {
                matches!(op, RaOp::Union | RaOp::Intersect | RaOp::Difference)
            }
            PlanNode::Input { .. } => false,
        };
        schema.attrs().first().is_some_and(|&t| t != AttrType::F32)
            && (!keyed_matcher || schema.key_arity() >= 1)
    })
}

/// The final AGGREGATE node of a partial-aggregate-shaped plan, or `None`.
///
/// The shape: exactly one AGGREGATE, it is the sole marked output with no
/// consumers, every other operator is thread-dependent (so row slices of
/// the inputs reach the aggregate as row slices of its input), the group
/// attributes are not F32 (group equality must equal bit equality for the
/// host merge), and every aggregate function is associatively mergeable:
///
/// * COUNT — partial counts add;
/// * SUM over a non-F32 attribute — `u64` wrapping addition is exactly
///   associative (F32 sums accumulate in f64 left-to-right and are not);
/// * MIN/MAX over a non-F32 attribute — comparison ties are bit-identical;
/// * AVG over a U32/Bool attribute — decomposes into SUM + COUNT whose f64
///   quotient is exact while group sums stay below 2^53.
fn mergeable_aggregate(plan: &QueryPlan) -> Option<NodeId> {
    let mut agg: Option<(NodeId, &Vec<usize>, &Vec<AggFn>)> = None;
    for (id, op, inputs) in plan.operator_nodes() {
        match op {
            RaOp::Aggregate { group_by, aggs } => {
                if agg.is_some() {
                    return None; // more than one aggregate
                }
                let input_schema = plan.schema(inputs[0]);
                agg = Some((id, group_by, aggs));
                if !mergeable_fns(input_schema, group_by, aggs) {
                    return None;
                }
            }
            other if consumer_class(other) != DependenceClass::Thread => return None,
            _ => {}
        }
    }
    let (id, _, _) = agg?;
    (plan.outputs() == [id] && plan.consumers(id).is_empty()).then_some(id)
}

/// Whether `group_by`/`aggs` over `input_schema` merge exactly.
fn mergeable_fns(input_schema: &Schema, group_by: &[usize], aggs: &[AggFn]) -> bool {
    let non_f32 = |a: usize| {
        input_schema
            .attrs()
            .get(a)
            .is_some_and(|&t| t != AttrType::F32)
    };
    group_by.iter().all(|&a| non_f32(a))
        && aggs.iter().all(|agg| match *agg {
            AggFn::Count => true,
            AggFn::Sum(a) | AggFn::Min(a) | AggFn::Max(a) => non_f32(a),
            AggFn::Avg(a) => input_schema
                .attrs()
                .get(a)
                .is_some_and(|&t| matches!(t, AttrType::U32 | AttrType::Bool)),
        })
}

/// Deterministic 64-bit mix (splitmix64 finalizer) — the bucket hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bucket of a tuple whose leading key word is `word0`.
pub(crate) fn bucket_of(word0: u64, buckets: usize) -> usize {
    (splitmix64(word0) % buckets.max(1) as u64) as usize
}

/// The partial-aggregate rewrite of a [`mergeable_aggregate`] plan plus the
/// data the merge step needs.
pub(crate) struct PartialAggregate {
    /// `plan` with its final AGGREGATE replaced by the partial aggregate
    /// (AVG decomposed into SUM + COUNT); node ids are identical to the
    /// original plan's.
    pub plan: QueryPlan,
    /// Node id of the aggregate (same in both plans).
    pub node: NodeId,
    /// The original aggregate's grouping attributes.
    pub group_by: Vec<usize>,
    /// The original aggregate functions.
    pub aggs: Vec<AggFn>,
    /// Schema of the aggregate's input relation (attribute types drive the
    /// merge comparators).
    pub input_schema: Schema,
    /// Output schema of the *original* aggregate — the merged result's.
    pub final_schema: Schema,
}

/// Build the partial-aggregate rewrite for `plan` (which must satisfy
/// [`mergeable_aggregate`]).
pub(crate) fn partial_aggregate_plan(plan: &QueryPlan) -> Result<PartialAggregate> {
    let node = mergeable_aggregate(plan).ok_or_else(|| {
        WeaverError::plan("plan is not partial-aggregate-shaped (no mergeable final aggregate)")
    })?;
    let (group_by, aggs, input_schema) = match plan.node(node) {
        PlanNode::Operator {
            op: RaOp::Aggregate { group_by, aggs },
            inputs,
        } => (
            group_by.clone(),
            aggs.clone(),
            plan.schema(inputs[0]).clone(),
        ),
        _ => unreachable!("mergeable_aggregate returns an Aggregate node"),
    };
    let partial_aggs: Vec<AggFn> = aggs
        .iter()
        .flat_map(|agg| match *agg {
            AggFn::Avg(a) => vec![AggFn::Sum(a), AggFn::Count],
            other => vec![other],
        })
        .collect();

    // Rebuild node-for-node in id order so every NodeId carries over.
    let mut partial = QueryPlan::new();
    for id in plan.node_ids() {
        let rebuilt = match plan.node(id) {
            PlanNode::Input { name, schema } => partial.add_input(name.clone(), schema.clone()),
            PlanNode::Operator { op, inputs } => {
                let op = if id == node {
                    RaOp::Aggregate {
                        group_by: group_by.clone(),
                        aggs: partial_aggs.clone(),
                    }
                } else {
                    op.clone()
                };
                partial.add_op(op, inputs)?
            }
        };
        debug_assert_eq!(rebuilt, id, "rebuild must preserve node ids");
    }
    partial.mark_output(node);

    let final_schema = plan.schema(node).clone();
    Ok(PartialAggregate {
        plan: partial,
        node,
        group_by,
        aggs,
        input_schema,
        final_schema,
    })
}

/// How one partial column merges across chunks.
enum MergeCol {
    /// `u64` wrapping addition (COUNT, non-F32 SUM, AVG's decomposed pair).
    Add,
    /// Keep the smaller word under the attribute's comparator.
    Min(AttrType),
    /// Keep the larger word under the attribute's comparator.
    Max(AttrType),
}

/// Merge per-chunk partial-aggregate rows into the final aggregate
/// relation, byte-identical to resident execution of the original plan.
pub(crate) fn merge_partials(spec: &PartialAggregate, partial_words: &[u64]) -> Result<Relation> {
    let g = spec.group_by.len();
    let mut merge_cols: Vec<MergeCol> = Vec::new();
    for agg in &spec.aggs {
        match *agg {
            AggFn::Count | AggFn::Sum(_) => merge_cols.push(MergeCol::Add),
            AggFn::Min(a) => merge_cols.push(MergeCol::Min(spec.input_schema.attr(a))),
            AggFn::Max(a) => merge_cols.push(MergeCol::Max(spec.input_schema.attr(a))),
            AggFn::Avg(_) => {
                merge_cols.push(MergeCol::Add); // sum
                merge_cols.push(MergeCol::Add); // count
            }
        }
    }
    let arity = g + merge_cols.len();
    debug_assert_eq!(partial_words.len() % arity.max(1), 0);

    // Group attributes are non-F32, so bit equality IS group equality and a
    // plain word-keyed map groups correctly; `from_words` re-sorts at the
    // end, so map order is irrelevant.
    let mut groups: BTreeMap<Vec<u64>, Vec<u64>> = BTreeMap::new();
    for row in partial_words.chunks_exact(arity.max(1)) {
        let (key, cols) = row.split_at(g);
        match groups.entry(key.to_vec()) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(cols.to_vec());
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                for (acc, (&w, kind)) in slot.get_mut().iter_mut().zip(cols.iter().zip(&merge_cols))
                {
                    match kind {
                        MergeCol::Add => *acc = acc.wrapping_add(w),
                        MergeCol::Min(ty) => {
                            if compare_words(w, *acc, *ty) == std::cmp::Ordering::Less {
                                *acc = w;
                            }
                        }
                        MergeCol::Max(ty) => {
                            if compare_words(w, *acc, *ty) == std::cmp::Ordering::Greater {
                                *acc = w;
                            }
                        }
                    }
                }
            }
        }
    }

    // Finalize each group into the original aggregate's output layout.
    let mut out = Vec::with_capacity(groups.len() * (g + spec.aggs.len()));
    for (key, cols) in groups {
        out.extend_from_slice(&key);
        let mut c = 0usize;
        for agg in &spec.aggs {
            match *agg {
                AggFn::Avg(_) => {
                    let (sum, count) = (cols[c], cols[c + 1]);
                    out.push(Value::F32((sum as f64 / count as f64) as f32).encode());
                    c += 2;
                }
                _ => {
                    out.push(cols[c]);
                    c += 1;
                }
            }
        }
    }
    Ok(Relation::from_words(spec.final_schema.clone(), out)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::{gen, CmpOp, Expr, Predicate};

    fn join_plan() -> QueryPlan {
        let (l, r) = gen::join_inputs(64, 2, 0.5, 1);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        plan.mark_output(j);
        plan
    }

    #[test]
    fn elementwise_plans_row_slice() {
        let input = gen::micro_input(64, 2);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(7)),
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(s);
        assert_eq!(select_chunk_strategy(&plan), Some(ChunkStrategy::RowSlice));
    }

    #[test]
    fn joins_hash_partition() {
        assert_eq!(
            select_chunk_strategy(&join_plan()),
            Some(ChunkStrategy::HashPartition)
        );
    }

    #[test]
    fn select_join_chains_hash_partition() {
        // Pattern (c)'s shape: selects feeding a join tree.
        let (l, r) = gen::join_inputs(64, 2, 0.5, 3);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let sx = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[x],
            )
            .unwrap();
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[sx, y]).unwrap();
        plan.mark_output(j);
        assert_eq!(
            select_chunk_strategy(&plan),
            Some(ChunkStrategy::HashPartition)
        );
    }

    #[test]
    fn rekeying_projection_blocks_hash_partitioning() {
        // A projection that drops the key (key_arity 0) may emit rows whose
        // word 0 no longer matches their bucket, so the invariant breaks.
        let (l, r) = gen::join_inputs(64, 2, 0.5, 4);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        let p = plan
            .add_op(
                RaOp::Project {
                    attrs: vec![1, 2],
                    key_arity: 0,
                },
                &[j],
            )
            .unwrap();
        plan.mark_output(p);
        assert_eq!(select_chunk_strategy(&plan), None);
    }

    #[test]
    fn sorts_and_products_have_no_strategy() {
        let input = gen::micro_input(64, 5);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        plan.mark_output(s);
        assert_eq!(select_chunk_strategy(&plan), None);

        let mut prod = QueryPlan::new();
        let a = prod.add_input("a", input.schema().clone());
        let b = prod.add_input("b", input.schema().clone());
        let p = prod.add_op(RaOp::Product, &[a, b]).unwrap();
        prod.mark_output(p);
        assert_eq!(select_chunk_strategy(&prod), None);
    }

    #[test]
    fn final_aggregates_partial_aggregate() {
        let input = gen::micro_input(64, 6);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[t],
            )
            .unwrap();
        let a = plan
            .add_op(
                RaOp::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggFn::Sum(1), AggFn::Count, AggFn::Avg(2), AggFn::Min(3)],
                },
                &[s],
            )
            .unwrap();
        plan.mark_output(a);
        assert_eq!(
            select_chunk_strategy(&plan),
            Some(ChunkStrategy::PartialAggregate)
        );

        // The rewrite preserves node ids and decomposes AVG.
        let partial = partial_aggregate_plan(&plan).unwrap();
        assert_eq!(partial.node, a);
        match partial.plan.node(a) {
            PlanNode::Operator {
                op: RaOp::Aggregate { aggs, .. },
                ..
            } => {
                assert_eq!(
                    aggs,
                    &[
                        AggFn::Sum(1),
                        AggFn::Count,
                        AggFn::Sum(2),
                        AggFn::Count,
                        AggFn::Min(3)
                    ]
                );
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn float_aggregates_are_not_mergeable() {
        // SUM over an F32 attribute accumulates in f64 left-to-right; the
        // partial merge cannot reproduce it bit-for-bit, so no strategy.
        let schema = Schema::new(vec![AttrType::U32, AttrType::F32], 1);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", schema);
        let a = plan
            .add_op(
                RaOp::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggFn::Sum(1)],
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(a);
        assert_eq!(select_chunk_strategy(&plan), None);
    }

    #[test]
    fn map_after_aggregate_blocks_partial_merge() {
        // The aggregate must be the sink: a consumer below it would see
        // partials, not the merged result.
        let input = gen::micro_input(64, 7);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let a = plan
            .add_op(
                RaOp::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggFn::Count],
                },
                &[t],
            )
            .unwrap();
        let m = plan
            .add_op(
                RaOp::Map {
                    exprs: vec![Expr::attr(0), Expr::attr(1)],
                    key_arity: 1,
                },
                &[a],
            )
            .unwrap();
        plan.mark_output(m);
        assert_eq!(select_chunk_strategy(&plan), None);
    }

    #[test]
    fn bucket_of_is_deterministic_and_in_range() {
        for p in [1usize, 2, 3, 7, 64] {
            for w in [0u64, 1, 7, u64::MAX, 0x9E37_79B9] {
                let b = bucket_of(w, p);
                assert!(b < p);
                assert_eq!(b, bucket_of(w, p));
            }
        }
    }
}
