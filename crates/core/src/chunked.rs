//! Chunked, double-buffered execution — the related-work technique the
//! paper cites as orthogonal to kernel fusion, made concrete.
//!
//! A plan streams through a device smaller than its inputs by decomposing
//! into chunks under a [`ChunkStrategy`] chosen by
//! [`select_chunk_strategy`]:
//!
//! * **row-slice** — an *elementwise* plan (every operator
//!   thread-dependent: SELECT, PROJECT, MAP) distributes over any row
//!   partition of its inputs, so the inputs are sliced uniformly by index;
//! * **hash-partition** — a key-matching plan (joins, semi/anti-joins, set
//!   ops over selects/projections) is co-partitioned by a hash of each
//!   tuple's leading key word: matching rows share the key, so every bucket
//!   pair is an independent sub-problem and bucket results are disjoint;
//! * **partial-aggregate** — a thread-dependent prefix feeding one final
//!   AGGREGATE runs per row slice producing *partials*, merged on the host
//!   under the aggregate's associativity.
//!
//! In every strategy chunk *i*'s computation overlaps chunk *i+1*'s upload
//! and chunk *i−1*'s download. Fusion composes with this: the fused kernel
//! still runs per chunk, and still moves less data.

use kw_gpu_sim::{ArenaStats, Device, Direction, ScratchArena, SimStats};
use kw_primitives::{consumer_class, DependenceClass};
use kw_relational::{Relation, Schema};

use crate::chunk_strategy::{bucket_of, merge_partials, partial_aggregate_plan};
use crate::{
    compile, select_chunk_strategy, ChunkStrategy, CompiledPlan, NodeId, QueryPlan, Result,
    WeaverConfig, WeaverError,
};

/// Report of a chunked execution.
#[derive(Debug)]
pub struct ChunkedReport {
    /// Relations of the marked plan outputs.
    pub outputs: std::collections::BTreeMap<NodeId, Relation>,
    /// Sum of per-chunk GPU seconds.
    pub gpu_seconds: f64,
    /// Sum of per-chunk *boundary* transfer seconds: the H2D uploads of
    /// chunk inputs and D2H downloads of chunk outputs that the stream
    /// scheduler can overlap with compute.
    pub pcie_seconds: f64,
    /// Sum of per-chunk *residual* transfer seconds: staged-intermediate
    /// round trips inside a chunk, which serialize with the compute that
    /// produces/consumes them. Kept separate from [`pcie_seconds`] so the
    /// field means the same thing here as in resident/staged reports once
    /// the two are added — roofline attribution must count both.
    ///
    /// [`pcie_seconds`]: ChunkedReport::pcie_seconds
    pub residual_pcie_seconds: f64,
    /// End-to-end seconds with transfers fully serialized.
    pub serialized_seconds: f64,
    /// End-to-end seconds under double buffering: chunk *i* computes while
    /// *i+1* uploads and *i−1* downloads. Produced by the device-level
    /// stream/event graph (each chunk's upload, compute and download are
    /// issued on a per-chunk stream; the H2D/D2H copy engines and the
    /// kernel engine overlap them), not by a side formula — see
    /// [`pipeline_makespan`] for the closed-form oracle it must match on
    /// pure three-stage pipelines.
    pub pipelined_seconds: f64,
    /// Number of chunks actually executed. Fully-empty chunk slots (every
    /// input relation of the slot empty) are skipped — they launch no
    /// kernels and emit no spans — so this equals the number of `chunk{i}`
    /// stream groups in the trace, not the requested chunk count.
    pub chunks: usize,
    /// The decomposition the executor ran.
    pub strategy: ChunkStrategy,
    /// Largest footprint any single chunk actually reached on the shared
    /// scratch device — the memory a real GPU would need for this schedule.
    /// Also folded into the parent device's memory gauges via
    /// [`Device::absorb_scratch_peak`].
    pub peak_device_bytes: u64,
    /// Accounting for the run's single scratch arena: all chunks share one
    /// reservation (the max of the per-chunk admission predictions), reset
    /// between chunk iterations, so the whole out-of-core run costs one
    /// alloc/free span pair. `None` only when zero chunks executed.
    pub arena: Option<ArenaStats>,
}

/// Whether every operator of `plan` is thread-dependent (elementwise), the
/// prerequisite for *row-sliced* streaming (other plans may still chunk
/// under a different [`ChunkStrategy`]).
pub fn is_elementwise(plan: &QueryPlan) -> bool {
    plan.operator_nodes()
        .all(|(_, op, _)| consumer_class(op) == DependenceClass::Thread)
}

/// Execute `plan` over `bindings` in `chunks` chunks with simulated double
/// buffering, under the strategy [`select_chunk_strategy`] picks.
///
/// # Errors
///
/// Returns [`WeaverError::Plan`] if no chunk strategy preserves the plan's
/// answer (e.g. a full sort), and propagates compilation/execution errors.
///
/// # Examples
///
/// ```
/// use kw_core::{execute_chunked, QueryPlan, WeaverConfig};
/// use kw_gpu_sim::{Device, DeviceConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{gen, CmpOp, Predicate, Value};
///
/// let input = gen::micro_input(100_000, 3);
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", input.schema().clone());
/// let s = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(1 << 31)) },
///     &[t],
/// )?;
/// plan.mark_output(s);
///
/// let mut device = Device::new(DeviceConfig::fermi_c2050());
/// let report = execute_chunked(&plan, &[("t", &input)], &mut device,
///                              &WeaverConfig::default(), 8)?;
/// assert!(report.pipelined_seconds <= report.serialized_seconds);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn execute_chunked(
    plan: &QueryPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    chunks: usize,
) -> Result<ChunkedReport> {
    let compiled = compile(plan, config)?;
    execute_chunked_compiled(plan, &compiled, bindings, device, config, chunks)
}

/// [`execute_chunked`] for an already-compiled plan (used by the resilient
/// driver, which compiles once and may run the same plan at several ladder
/// rungs).
///
/// # Errors
///
/// Same contract as [`execute_chunked`].
pub fn execute_chunked_compiled(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    chunks: usize,
) -> Result<ChunkedReport> {
    let Some(strategy) = select_chunk_strategy(plan) else {
        return Err(WeaverError::plan(
            "chunked streaming requires a partitionable plan: row-sliceable (elementwise), \
             hash-partitionable, or merge-aggregable",
        ));
    };
    let chunks = chunks.max(1);

    match strategy {
        ChunkStrategy::RowSlice => {
            let slots = row_slice_inputs(bindings, effective_chunks(bindings, chunks))?;
            let run = run_chunks(plan, compiled, &slots, device, config)?;
            finish_concat(run, strategy)
        }
        ChunkStrategy::HashPartition => {
            // No clamp: buckets are keyed by hash, not row index, and a
            // bucket count above the distinct-key count just leaves empty
            // slots that are skipped below.
            let slots = hash_partition_inputs(bindings, chunks)?;
            let run = run_chunks(plan, compiled, &slots, device, config)?;
            finish_concat(run, strategy)
        }
        ChunkStrategy::PartialAggregate => {
            let spec = partial_aggregate_plan(plan)?;
            let partial_compiled = compile(&spec.plan, config)?;
            let slots = row_slice_inputs(bindings, effective_chunks(bindings, chunks))?;
            let mut run = run_chunks(&spec.plan, &partial_compiled, &slots, device, config)?;
            let partial_words = run.outputs.remove(&spec.node).unwrap_or_default();
            let merged = merge_partials(&spec, &partial_words)?;
            let outputs = std::iter::once((spec.node, merged)).collect();
            Ok(run.into_report(outputs, strategy))
        }
    }
}

/// Satellite of the row-sliced strategies: never request more chunks than
/// the shortest bound input has rows — the extra slots would hold no data
/// yet still fork scratch devices and launch zero-row kernels.
fn effective_chunks(bindings: &[(&str, &Relation)], requested: usize) -> usize {
    let shortest = bindings.iter().map(|(_, r)| r.len()).min().unwrap_or(0);
    requested.clamp(1, shortest.max(1))
}

/// Slice every bound input into `chunks` row chunks (chunking by index
/// keeps each chunk key-sorted and their concatenation key-ordered).
fn row_slice_inputs<'a>(
    bindings: &[(&'a str, &Relation)],
    chunks: usize,
) -> Result<Vec<Vec<(&'a str, Relation)>>> {
    let mut slots: Vec<Vec<(&str, Relation)>> = vec![Vec::new(); chunks];
    for (name, rel) in bindings {
        let arity = rel.schema().arity();
        for (c, slot) in slots.iter_mut().enumerate() {
            let lo = c * rel.len() / chunks;
            let hi = (c + 1) * rel.len() / chunks;
            let words = rel.words()[lo * arity..hi * arity].to_vec();
            slot.push((
                name,
                Relation::from_sorted_words(rel.schema().clone(), words)?,
            ));
        }
    }
    Ok(slots)
}

/// Co-partition every bound input into `buckets` hash buckets on the
/// tuple's leading key word. Rows of every input with equal keys share a
/// bucket, so each bucket is an independent sub-problem of the plan.
fn hash_partition_inputs<'a>(
    bindings: &[(&'a str, &Relation)],
    buckets: usize,
) -> Result<Vec<Vec<(&'a str, Relation)>>> {
    let mut slots: Vec<Vec<(&str, Relation)>> = vec![Vec::new(); buckets];
    for (name, rel) in bindings {
        let mut per_bucket: Vec<Vec<u64>> = vec![Vec::new(); buckets];
        for t in rel.iter() {
            per_bucket[bucket_of(t[0], buckets)].extend_from_slice(t);
        }
        for (slot, words) in slots.iter_mut().zip(per_bucket) {
            // A bucket is a subsequence of an already-canonical relation,
            // so it is still sorted.
            slot.push((
                name,
                Relation::from_sorted_words(rel.schema().clone(), words)?,
            ));
        }
    }
    Ok(slots)
}

/// Accumulated results of the per-chunk execution loop, before the
/// strategy-specific output assembly.
struct ChunkRun {
    outputs: std::collections::BTreeMap<NodeId, Vec<u64>>,
    schemas: std::collections::BTreeMap<NodeId, Schema>,
    gpu_seconds: f64,
    pcie_seconds: f64,
    residual_pcie_seconds: f64,
    serialized_seconds: f64,
    pipelined_seconds: f64,
    executed: usize,
    peak_device_bytes: u64,
    arena: Option<ArenaStats>,
}

impl ChunkRun {
    fn into_report(
        self,
        outputs: std::collections::BTreeMap<NodeId, Relation>,
        strategy: ChunkStrategy,
    ) -> ChunkedReport {
        ChunkedReport {
            outputs,
            gpu_seconds: self.gpu_seconds,
            pcie_seconds: self.pcie_seconds,
            residual_pcie_seconds: self.residual_pcie_seconds,
            serialized_seconds: self.serialized_seconds,
            pipelined_seconds: self.pipelined_seconds,
            chunks: self.executed,
            strategy,
            peak_device_bytes: self.peak_device_bytes,
            arena: self.arena,
        }
    }
}

/// Concatenate per-chunk output words into canonical relations (row slices
/// concatenate in key order; hash buckets are disjoint, and `from_words`
/// restores the canonical sort).
fn finish_concat(mut run: ChunkRun, strategy: ChunkStrategy) -> Result<ChunkedReport> {
    let outputs = std::mem::take(&mut run.outputs)
        .into_iter()
        .map(|(node, words)| {
            let schema = run.schemas[&node].clone();
            Ok((node, Relation::from_words(schema, words)?))
        })
        .collect::<Result<_>>()?;
    Ok(run.into_report(outputs, strategy))
}

/// Execute each chunk slot on a scratch device to get its isolated costs,
/// then replay the chunk's traffic and compute on the user's device as real
/// streamed operations: one stream per chunk, uploads on the H2D copy
/// engine, the chunk's kernels as one compute span, downloads on the D2H
/// engine. The stream scheduler — not a side formula — decides how much of
/// the traffic hides behind compute. Slots whose every input is empty are
/// skipped outright (no relational operator produces rows from empty
/// inputs).
fn run_chunks(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    slots: &[Vec<(&str, Relation)>],
    device: &mut Device,
    config: &WeaverConfig,
) -> Result<ChunkRun> {
    let base_cycles = device.sync_streams();
    let mut outputs: std::collections::BTreeMap<NodeId, Vec<u64>> = Default::default();
    let mut schemas: std::collections::BTreeMap<NodeId, Schema> = Default::default();
    // Prepopulate so skipped slots still leave every marked output present
    // (as an empty relation) in the assembled report.
    for &o in plan.outputs() {
        outputs.entry(o).or_default();
        schemas.entry(o).or_insert_with(|| plan.schema(o).clone());
    }

    // One scratch fork and ONE arena serve every chunk iteration: the
    // reservation is the max of the per-chunk admission predictions, the
    // arena is reset between chunks, so the whole out-of-core run emits one
    // alloc/free span pair instead of O(steps × chunks). The fork carries
    // the parent's fault rates on a derived stream, so injected faults keep
    // striking inside chunk execution too.
    let mut reservation: Option<u64> = None;
    for chunk in slots {
        if chunk.iter().all(|(_, r)| r.is_empty()) {
            continue;
        }
        let refs: Vec<(&str, &Relation)> = chunk.iter().map(|(n, r)| (*n, r)).collect();
        let need = crate::admission::predict_reservation(plan, compiled, &refs, config.mode)?;
        reservation = Some(reservation.unwrap_or(0).max(need));
    }
    let mut shared: Option<(Device, ScratchArena)> = match reservation {
        Some(bytes) => {
            let mut scratch = device.fork_scratch();
            let arena = scratch.create_arena(bytes, "chunked.arena")?;
            Some((scratch, arena))
        }
        None => None,
    };
    // Fold the fork's true high-water mark into the parent device's memory
    // gauges whether the run lands or dies: the footprint was real either
    // way, and the parent's `kw_*` series must report it.
    let absorb = |device: &mut Device, shared: Option<(Device, ScratchArena)>| {
        shared.map(|(mut scratch, arena)| {
            let stats = scratch.release_arena(arena);
            let stats = match stats {
                Ok(s) => Some(s),
                Err(fe) => {
                    scratch.note_free_error(&fe);
                    None
                }
            };
            device.absorb_scratch_peak(scratch.memory().peak());
            let fork_free_errors = scratch.metrics().counter("kw_free_errors_total");
            device
                .metrics_mut()
                .inc("kw_free_errors_total", fork_free_errors);
            stats
        })
    };

    let mut executed = 0usize;
    let mut peak_device_bytes = 0u64;
    let mut serialized_cycles = 0u64;
    let mut total_gpu_cycles = 0u64;
    let mut pcie_seconds = 0.0f64;
    let mut residual_pcie_seconds = 0.0f64;
    for (chunk_idx, chunk) in slots.iter().enumerate() {
        if chunk.iter().all(|(_, r)| r.is_empty()) {
            continue;
        }
        executed += 1;
        let refs: Vec<(&str, &Relation)> = chunk.iter().map(|(n, r)| (*n, r)).collect();
        let (scratch, arena) = shared.as_mut().expect("non-empty chunk implies a fork");
        // The scratch device accumulates over chunks; per-chunk costs are
        // the counter deltas around this iteration.
        let before = *scratch.stats();
        let report = match crate::executor::execute_compiled_in_arena(
            plan, compiled, &refs, scratch, config, arena,
        ) {
            Ok(r) => r,
            Err(e) => {
                absorb(device, shared.take());
                return Err(e);
            }
        };
        arena.reset();
        peak_device_bytes = peak_device_bytes.max(report.peak_device_bytes);
        let delta = scratch.stats().diff(&before);

        let in_bytes: u64 = chunk.iter().map(|(_, r)| r.byte_size() as u64).sum();
        let out_bytes: u64 = report.outputs.values().map(|r| r.byte_size() as u64).sum();
        let h2d = kw_gpu_sim::pcie_seconds(device.config(), in_bytes);
        let d2h = kw_gpu_sim::pcie_seconds(device.config(), out_bytes);
        // Transfers of *intermediates* (staged mode's round trips) serialize
        // with the computation that produces/consumes them — they belong to
        // the middle pipeline stage, not to the overlappable edges — so
        // their duration folds into the compute span while their seconds
        // are surfaced separately as `residual_pcie_seconds`.
        let residual = (delta.pcie_seconds - h2d - d2h).max(0.0);
        residual_pcie_seconds += residual;
        let scratch_stats = delta;
        let mid_cycles = scratch_stats
            .gpu_cycles
            .saturating_add(device.config().seconds_to_cycles(residual));
        total_gpu_cycles += scratch_stats.gpu_cycles;

        // The chunk's kernel-side counters, without its transfer traffic:
        // the boundary transfers are mirrored below as real streamed
        // transfers (fault-injectable like any transfer), and double
        // counting either side would break the reconciliation invariant.
        let compute_delta = SimStats {
            kernel_launches: scratch_stats.kernel_launches,
            launch_cycles: scratch_stats.launch_cycles,
            global_bytes_read: scratch_stats.global_bytes_read,
            global_bytes_written: scratch_stats.global_bytes_written,
            global_access_cycles: scratch_stats.global_access_cycles,
            shared_bytes_read: scratch_stats.shared_bytes_read,
            shared_bytes_written: scratch_stats.shared_bytes_written,
            shared_access_cycles: scratch_stats.shared_access_cycles,
            alu_ops: scratch_stats.alu_ops,
            alu_cycles: scratch_stats.alu_cycles,
            barriers: scratch_stats.barriers,
            barrier_cycles: scratch_stats.barrier_cycles,
            gpu_cycles: scratch_stats.gpu_cycles,
            ..SimStats::default()
        };

        // Issue the chunk on its own stream. Zero-byte transfers are
        // skipped entirely — a fully-selective filter must not pay the
        // per-transfer PCIe latency for an empty download. The scope is
        // popped before any fault propagates so a retry starts with clean
        // labels, and the streams are drained so the retry's clock starts
        // from a settled makespan.
        device.push_scope(format!("chunk{chunk_idx}"));
        let stream = device.create_stream();
        let issued = (|device: &mut Device| -> kw_gpu_sim::Result<f64> {
            let mut transfers = 0.0;
            if in_bytes > 0 {
                transfers += device.transfer_on(stream, Direction::HostToDevice, in_bytes)?;
            }
            device.compute_on(stream, "compute", &compute_delta, mid_cycles)?;
            if out_bytes > 0 {
                transfers += device.transfer_on(stream, Direction::DeviceToHost, out_bytes)?;
            }
            Ok(transfers)
        })(device);
        device.pop_scope();
        match issued {
            Ok(transfers) => pcie_seconds += transfers,
            Err(e) => {
                device.sync_streams();
                absorb(device, shared.take());
                return Err(e.into());
            }
        }
        let chunk_serialized = if in_bytes > 0 {
            device.config().seconds_to_cycles(h2d)
        } else {
            0
        } + mid_cycles
            + if out_bytes > 0 {
                device.config().seconds_to_cycles(d2h)
            } else {
                0
            };
        serialized_cycles += chunk_serialized;

        for (&node, rel) in &report.outputs {
            outputs
                .entry(node)
                .or_default()
                .extend_from_slice(rel.words());
            schemas.entry(node).or_insert_with(|| rel.schema().clone());
        }
    }

    // Wallclock: drain the streams and read the event graph's makespan off
    // the unified cycle clock. Serialized is the same scheduled work with
    // no engine overlap (the sum of every operation's duration), so
    // `pipelined <= serialized` holds structurally, and since all compute
    // runs on one engine `pipelined >= gpu_seconds` does too.
    let end_cycles = device.sync_streams();
    let pipelined = device.config().cycles_to_seconds(end_cycles - base_cycles);
    let serialized = device.config().cycles_to_seconds(serialized_cycles);
    let gpu_seconds = device.config().cycles_to_seconds(total_gpu_cycles);
    let arena = absorb(device, shared.take()).flatten();

    Ok(ChunkRun {
        outputs,
        schemas,
        gpu_seconds,
        pcie_seconds,
        residual_pcie_seconds,
        serialized_seconds: serialized,
        pipelined_seconds: pipelined,
        executed,
        peak_device_bytes,
        arena,
    })
}

/// Makespan of a three-stage pipeline (upload → compute → download) where
/// each stage processes chunks in order and a chunk's stage can start once
/// the previous stage finished it and the stage finished the previous chunk.
///
/// This closed-form recurrence is no longer what [`execute_chunked`]
/// reports — overlap is simulated by the device's stream/event scheduler
/// (`kw_gpu_sim::StreamModel`) — but it is retained as the test oracle the
/// stream model must match on pure three-stage pipelines with one compute
/// engine (see the property tests in `tests/simulator_properties.rs`).
pub fn pipeline_makespan(chunks: &[(f64, f64, f64)]) -> f64 {
    let mut up_free = 0.0f64;
    let mut gpu_free = 0.0f64;
    let mut down_free = 0.0f64;
    for &(h2d, gpu, d2h) in chunks {
        let up_done = up_free + h2d;
        up_free = up_done;
        let gpu_done = up_done.max(gpu_free) + gpu;
        gpu_free = gpu_done;
        let down_done = gpu_done.max(down_free) + d2h;
        down_free = down_done;
    }
    down_free
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_gpu_sim::DeviceConfig;
    use kw_primitives::RaOp;
    use kw_relational::ops::AggFn;
    use kw_relational::{gen, ops, CmpOp, Predicate, Value};

    fn elementwise_plan(schema: kw_relational::Schema) -> (QueryPlan, NodeId) {
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", schema);
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[t],
            )
            .unwrap();
        let p = plan
            .add_op(
                RaOp::Project {
                    attrs: vec![0, 1],
                    key_arity: 1,
                },
                &[s],
            )
            .unwrap();
        plan.mark_output(p);
        (plan, p)
    }

    fn join_plan(l: &kw_relational::Relation, r: &kw_relational::Relation) -> (QueryPlan, NodeId) {
        let mut plan = QueryPlan::new();
        let na = plan.add_input("a", l.schema().clone());
        let nb = plan.add_input("b", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[na, nb]).unwrap();
        plan.mark_output(j);
        (plan, j)
    }

    #[test]
    fn chunked_matches_whole_input_execution() {
        let input = gen::micro_input(40_000, 21);
        let (plan, out) = elementwise_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            7,
        )
        .unwrap();
        let oracle = ops::project(
            &ops::select(
                &input,
                &Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            )
            .unwrap(),
            &[0, 1],
            1,
        )
        .unwrap();
        assert_eq!(report.outputs[&out], oracle);
        assert_eq!(report.chunks, 7);
        assert_eq!(report.strategy, ChunkStrategy::RowSlice);
    }

    #[test]
    fn pipelining_beats_serialization() {
        let input = gen::micro_input(200_000, 22);
        let (plan, _) = elementwise_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            8,
        )
        .unwrap();
        assert!(
            report.pipelined_seconds < report.serialized_seconds * 0.95,
            "overlap should shave real time: {report:?}"
        );
        // The pipeline can never beat its longest stage.
        assert!(report.pipelined_seconds >= report.gpu_seconds.max(0.0));
    }

    #[test]
    fn pipelined_wallclock_comes_from_the_stream_graph() {
        let input = gen::micro_input(100_000, 24);
        let (plan, _) = elementwise_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            6,
        )
        .unwrap();

        // The device actually scheduled streamed work: one upload, one
        // compute and one download per chunk (nothing here is selective
        // enough to produce empty outputs).
        assert_eq!(dev.streams().ops().len(), 3 * report.chunks);
        // The reported wallclock IS the event graph's makespan on the
        // unified cycle clock (fresh device: base clock was 0).
        let makespan_secs = dev.config().cycles_to_seconds(dev.makespan());
        assert!((report.pipelined_seconds - makespan_secs).abs() < 1e-15);
        assert_eq!(dev.clock_cycles(), dev.makespan(), "streams were drained");
        // Bounds: no better than the busiest engine, no worse than serial.
        let busiest = *dev.streams().engine_busy().values().max().unwrap();
        assert!(report.pipelined_seconds >= dev.config().cycles_to_seconds(busiest) - 1e-15);
        assert!(report.pipelined_seconds <= report.serialized_seconds);

        // The parent's stats now carry the chunks' kernel-side counters,
        // and the span log reconciles with them.
        assert!(dev.stats().kernel_launches > 0);
        assert_eq!(
            dev.config().cycles_to_seconds(dev.stats().gpu_cycles),
            report.gpu_seconds
        );
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
    }

    #[test]
    fn zero_byte_mirrored_transfers_are_skipped() {
        // A select nothing survives: every chunk's output is empty, so no
        // D2H transfer should be issued and no per-chunk PCIe latency paid.
        let input = gen::micro_input(50_000, 25);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(0)),
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(s);

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let chunks = 8;
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            chunks,
        )
        .unwrap();
        assert!(report.outputs.values().all(|r| r.is_empty()));
        // Regression: each empty chunk output used to be "downloaded" as a
        // zero-byte transfer costing the full per-transfer PCIe latency
        // (chunks × 10 µs of fabricated time). Now it is skipped outright.
        assert_eq!(dev.stats().d2h_transfers, 0, "empty downloads skipped");
        assert_eq!(dev.stats().d2h_bytes, 0);
        assert_eq!(dev.stats().h2d_transfers as usize, chunks);
        assert!((report.pcie_seconds - dev.stats().pcie_seconds).abs() < 1e-12);
    }

    #[test]
    fn reported_chunks_equal_executed_chunks() {
        // Requesting far more chunks than the input has rows must clamp:
        // no zero-row scratch forks, no zero-cycle compute spans.
        let input = gen::micro_input(5, 26);
        let (plan, _) = elementwise_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            64,
        )
        .unwrap();
        assert_eq!(report.chunks, 5, "64 requested chunks clamp to 5 rows");
        assert_eq!(
            dev.stats().h2d_transfers as usize,
            report.chunks,
            "chunks_reported == chunks_executed"
        );

        // A fully-empty input executes zero chunks and still reports every
        // marked output (empty).
        let empty = kw_relational::Relation::empty(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &empty)],
            &mut dev,
            &WeaverConfig::default(),
            8,
        )
        .unwrap();
        assert_eq!(report.chunks, 0);
        assert_eq!(dev.stats().kernel_launches, 0, "no work for no rows");
        assert_eq!(report.outputs.len(), 1);
        assert!(report.outputs.values().all(|r| r.is_empty()));
    }

    #[test]
    fn joins_chunk_via_hash_partitioning() {
        let (a, b) = gen::join_inputs(8_000, 2, 0.5, 23);
        let (plan, out) = join_plan(&a, &b);
        assert!(!is_elementwise(&plan));
        let oracle = ops::join(&a, &b, 1).unwrap();

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("a", &a), ("b", &b)],
            &mut dev,
            &WeaverConfig::default(),
            4,
        )
        .unwrap();
        assert_eq!(report.strategy, ChunkStrategy::HashPartition);
        assert_eq!(report.outputs[&out], oracle, "bucket concat == resident");
        assert!(report.chunks >= 2 && report.chunks <= 4);
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
    }

    #[test]
    fn final_aggregate_chunks_via_partial_merge() {
        let input = gen::micro_input(20_000, 27);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let a = plan
            .add_op(
                RaOp::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggFn::Sum(1), AggFn::Count, AggFn::Avg(2)],
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(a);
        let oracle =
            ops::aggregate(&input, &[0], &[AggFn::Sum(1), AggFn::Count, AggFn::Avg(2)]).unwrap();

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            6,
        )
        .unwrap();
        assert_eq!(report.strategy, ChunkStrategy::PartialAggregate);
        assert_eq!(report.outputs[&a], oracle, "merged partials == resident");
        assert_eq!(report.chunks, 6);
        kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
    }

    #[test]
    fn non_partitionable_plans_rejected() {
        let input = gen::micro_input(1_000, 23);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        plan.mark_output(s);
        assert!(select_chunk_strategy(&plan).is_none());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let err = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            4,
        )
        .unwrap_err();
        assert!(err.to_string().contains("partitionable"));
    }

    #[test]
    fn makespan_arithmetic() {
        // One chunk: no overlap possible.
        assert!((pipeline_makespan(&[(1.0, 2.0, 1.0)]) - 4.0).abs() < 1e-12);
        // Two identical chunks: the compute of chunk 0 hides the upload of
        // chunk 1.
        // Serialized would be 8: the pipeline hides chunk 1's upload behind
        // chunk 0's compute and overlaps the downloads, finishing at 6.
        let two = pipeline_makespan(&[(1.0, 2.0, 1.0), (1.0, 2.0, 1.0)]);
        assert!((two - 6.0).abs() < 1e-12, "{two}");
    }
}
