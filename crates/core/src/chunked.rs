//! Chunked, double-buffered execution — the related-work technique the
//! paper cites as orthogonal to kernel fusion, made concrete.
//!
//! An *elementwise* plan (every operator thread-dependent: SELECT, PROJECT,
//! MAP) distributes over any row partition of its inputs, so the input can
//! stream through the GPU in chunks with chunk *i*'s computation overlapping
//! chunk *i+1*'s upload and chunk *i−1*'s download. Fusion composes with
//! this: the fused kernel still runs per chunk, and still moves less data.

use kw_gpu_sim::{Device, Direction};
use kw_primitives::{consumer_class, DependenceClass};
use kw_relational::Relation;

use crate::{compile, CompiledPlan, NodeId, QueryPlan, Result, WeaverConfig, WeaverError};

/// Report of a chunked execution.
#[derive(Debug)]
pub struct ChunkedReport {
    /// Relations of the marked plan outputs.
    pub outputs: std::collections::BTreeMap<NodeId, Relation>,
    /// Sum of per-chunk GPU seconds.
    pub gpu_seconds: f64,
    /// Sum of per-chunk transfer seconds.
    pub pcie_seconds: f64,
    /// End-to-end seconds with transfers fully serialized.
    pub serialized_seconds: f64,
    /// End-to-end seconds under double buffering: chunk *i* computes while
    /// *i+1* uploads and *i−1* downloads.
    pub pipelined_seconds: f64,
    /// Number of chunks executed.
    pub chunks: usize,
    /// Largest peak device bytes any single chunk reached on its scratch
    /// device — the footprint a real GPU would need for this schedule.
    pub peak_device_bytes: u64,
}

/// Whether every operator of `plan` is thread-dependent (elementwise), the
/// prerequisite for row-chunked streaming.
pub fn is_elementwise(plan: &QueryPlan) -> bool {
    plan.operator_nodes()
        .all(|(_, op, _)| consumer_class(op) == DependenceClass::Thread)
}

/// Execute `plan` over `bindings` in `chunks` row-chunks with simulated
/// double buffering.
///
/// # Errors
///
/// Returns [`WeaverError::Plan`] if the plan is not elementwise (CTA- or
/// kernel-dependent operators cannot stream row chunks independently), and
/// propagates compilation/execution errors.
///
/// # Examples
///
/// ```
/// use kw_core::{execute_chunked, QueryPlan, WeaverConfig};
/// use kw_gpu_sim::{Device, DeviceConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{gen, CmpOp, Predicate, Value};
///
/// let input = gen::micro_input(100_000, 3);
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", input.schema().clone());
/// let s = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(1 << 31)) },
///     &[t],
/// )?;
/// plan.mark_output(s);
///
/// let mut device = Device::new(DeviceConfig::fermi_c2050());
/// let report = execute_chunked(&plan, &[("t", &input)], &mut device,
///                              &WeaverConfig::default(), 8)?;
/// assert!(report.pipelined_seconds <= report.serialized_seconds);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn execute_chunked(
    plan: &QueryPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    chunks: usize,
) -> Result<ChunkedReport> {
    let compiled = compile(plan, config)?;
    execute_chunked_compiled(plan, &compiled, bindings, device, config, chunks)
}

/// [`execute_chunked`] for an already-compiled plan (used by the resilient
/// driver, which compiles once and may run the same plan at several ladder
/// rungs).
///
/// # Errors
///
/// Same contract as [`execute_chunked`].
pub fn execute_chunked_compiled(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    chunks: usize,
) -> Result<ChunkedReport> {
    if !is_elementwise(plan) {
        return Err(WeaverError::plan(
            "chunked streaming requires an elementwise (thread-dependent-only) plan",
        ));
    }
    let chunks = chunks.max(1);

    // Split every bound input into row chunks (chunking by index keeps each
    // chunk key-sorted and their concatenation key-ordered).
    let mut chunked_inputs: Vec<Vec<(&str, Relation)>> = vec![Vec::new(); chunks];
    for (name, rel) in bindings {
        let arity = rel.schema().arity();
        for (c, slot) in chunked_inputs.iter_mut().enumerate() {
            let lo = c * rel.len() / chunks;
            let hi = (c + 1) * rel.len() / chunks;
            let words = rel.words()[lo * arity..hi * arity].to_vec();
            let chunk = Relation::from_sorted_words(rel.schema().clone(), words)?;
            slot.push((name, chunk));
        }
    }

    // Execute each chunk on a scratch device to get its isolated costs,
    // then charge the user's device and combine the schedule.
    let mut per_chunk: Vec<(f64, f64, f64)> = Vec::new(); // (h2d, gpu, d2h)
    let mut outputs: std::collections::BTreeMap<NodeId, Vec<u64>> = Default::default();
    let mut out_schemas: std::collections::BTreeMap<NodeId, kw_relational::Schema> =
        Default::default();

    let mut peak_device_bytes = 0u64;
    for (chunk_idx, chunk) in chunked_inputs.iter().enumerate() {
        let refs: Vec<(&str, &Relation)> = chunk.iter().map(|(n, r)| (*n, r)).collect();
        // fork_scratch carries the parent's fault rates on a derived stream,
        // so injected faults keep striking inside chunk execution too.
        let mut scratch = device.fork_scratch();
        let report = crate::execute_compiled(plan, compiled, &refs, &mut scratch, config)?;
        peak_device_bytes = peak_device_bytes.max(scratch.memory().peak());

        let in_bytes: u64 = chunk.iter().map(|(_, r)| r.byte_size() as u64).sum();
        let out_bytes: u64 = report.outputs.values().map(|r| r.byte_size() as u64).sum();
        let h2d = kw_gpu_sim::pcie_seconds(device.config(), in_bytes);
        let d2h = kw_gpu_sim::pcie_seconds(device.config(), out_bytes);
        // Transfers of *intermediates* (staged mode's round trips) serialize
        // with the computation that produces/consumes them — they belong to
        // the middle pipeline stage, not to the overlappable edges.
        let mid = report.gpu_seconds + (report.pcie_seconds - h2d - d2h).max(0.0);
        per_chunk.push((h2d, mid, d2h));

        // Mirror the traffic onto the user's device for its counters. These
        // are fault-injectable like any transfer. The chunk's own kernels
        // ran on the scratch device and are not part of the parent's span
        // log (see DESIGN.md); the mirrored transfers are, and carry the
        // chunk's provenance. The scope is popped before any fault
        // propagates so a retry starts with clean labels.
        device.push_scope(format!("chunk{chunk_idx}"));
        let mirrored = device
            .transfer(Direction::HostToDevice, in_bytes)
            .and_then(|_| device.transfer(Direction::DeviceToHost, out_bytes));
        device.pop_scope();
        mirrored?;

        for (&node, rel) in &report.outputs {
            outputs
                .entry(node)
                .or_default()
                .extend_from_slice(rel.words());
            out_schemas
                .entry(node)
                .or_insert_with(|| rel.schema().clone());
        }
    }

    // Schedule: serialized = Σ (h2d + gpu + d2h). Pipelined = classic
    // three-stage software pipeline over (upload, compute, download).
    let serialized: f64 = per_chunk.iter().map(|(a, b, c)| a + b + c).sum();
    let pipelined = pipeline_makespan(&per_chunk);
    let gpu_seconds: f64 = per_chunk.iter().map(|(_, g, _)| g).sum();
    let pcie_seconds: f64 = per_chunk.iter().map(|(h, _, d)| h + d).sum();

    let outputs = outputs
        .into_iter()
        .map(|(node, words)| {
            let schema = out_schemas.remove(&node).expect("schema recorded");
            Ok((node, Relation::from_words(schema, words)?))
        })
        .collect::<Result<_>>()?;

    Ok(ChunkedReport {
        outputs,
        gpu_seconds,
        pcie_seconds,
        serialized_seconds: serialized,
        pipelined_seconds: pipelined,
        chunks,
        peak_device_bytes,
    })
}

/// Makespan of a three-stage pipeline (upload → compute → download) where
/// each stage processes chunks in order and a chunk's stage can start once
/// the previous stage finished it and the stage finished the previous chunk.
fn pipeline_makespan(chunks: &[(f64, f64, f64)]) -> f64 {
    let mut up_free = 0.0f64;
    let mut gpu_free = 0.0f64;
    let mut down_free = 0.0f64;
    for &(h2d, gpu, d2h) in chunks {
        let up_done = up_free + h2d;
        up_free = up_done;
        let gpu_done = up_done.max(gpu_free) + gpu;
        gpu_free = gpu_done;
        let down_done = gpu_done.max(down_free) + d2h;
        down_free = down_done;
    }
    down_free
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_gpu_sim::DeviceConfig;
    use kw_primitives::RaOp;
    use kw_relational::{gen, ops, CmpOp, Predicate, Value};

    fn elementwise_plan(schema: kw_relational::Schema) -> (QueryPlan, NodeId) {
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", schema);
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[t],
            )
            .unwrap();
        let p = plan
            .add_op(
                RaOp::Project {
                    attrs: vec![0, 1],
                    key_arity: 1,
                },
                &[s],
            )
            .unwrap();
        plan.mark_output(p);
        (plan, p)
    }

    #[test]
    fn chunked_matches_whole_input_execution() {
        let input = gen::micro_input(40_000, 21);
        let (plan, out) = elementwise_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            7,
        )
        .unwrap();
        let oracle = ops::project(
            &ops::select(
                &input,
                &Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            )
            .unwrap(),
            &[0, 1],
            1,
        )
        .unwrap();
        assert_eq!(report.outputs[&out], oracle);
        assert_eq!(report.chunks, 7);
    }

    #[test]
    fn pipelining_beats_serialization() {
        let input = gen::micro_input(200_000, 22);
        let (plan, _) = elementwise_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            8,
        )
        .unwrap();
        assert!(
            report.pipelined_seconds < report.serialized_seconds * 0.95,
            "overlap should shave real time: {report:?}"
        );
        // The pipeline can never beat its longest stage.
        assert!(report.pipelined_seconds >= report.gpu_seconds.max(0.0));
    }

    #[test]
    fn cta_dependent_plans_rejected() {
        let (a, b) = gen::join_inputs(1_000, 2, 0.5, 23);
        let mut plan = QueryPlan::new();
        let na = plan.add_input("a", a.schema().clone());
        let nb = plan.add_input("b", b.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[na, nb]).unwrap();
        plan.mark_output(j);
        assert!(!is_elementwise(&plan));
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let err = execute_chunked(
            &plan,
            &[("a", &a), ("b", &b)],
            &mut dev,
            &WeaverConfig::default(),
            4,
        )
        .unwrap_err();
        assert!(err.to_string().contains("elementwise"));
    }

    #[test]
    fn makespan_arithmetic() {
        // One chunk: no overlap possible.
        assert!((pipeline_makespan(&[(1.0, 2.0, 1.0)]) - 4.0).abs() < 1e-12);
        // Two identical chunks: the compute of chunk 0 hides the upload of
        // chunk 1.
        // Serialized would be 8: the pipeline hides chunk 1's upload behind
        // chunk 0's compute and overlaps the downloads, finishing at 6.
        let two = pipeline_makespan(&[(1.0, 2.0, 1.0), (1.0, 2.0, 1.0)]);
        assert!((two - 6.0).abs() < 1e-12, "{two}");
    }
}
