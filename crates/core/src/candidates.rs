//! Algorithm 1: finding kernel-fusion candidates.
//!
//! As in the paper, operators causing kernel dependences (SORT, grouped
//! AGGREGATE) are removed from the dependence graph; the remaining connected
//! operators — connected by producer-consumer edges and, with the Section
//! 4.4 extension enabled, by shared-input edges — form candidate groups
//! bounded by the kernel-dependent operators.

use std::collections::BTreeSet;

use kw_primitives::{is_fusible, RaOp};

use crate::{NodeId, PlanNode, QueryPlan};

/// Options controlling candidate discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionOptions {
    /// Also connect operators that share an input relation (the paper's
    /// first Section 4.4 extension; enables micro-benchmark pattern (d)).
    pub input_dependence: bool,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions {
            input_dependence: true,
        }
    }
}

/// Whether an operator can be woven into a fused kernel.
///
/// Kernel-dependent operators (SORT, AGGREGATE) cannot; CROSS PRODUCT runs
/// as a streaming operator but replicates its right input across CTAs, which
/// is incompatible with the shared key-range partitioning a fused kernel
/// uses, so it executes standalone as well.
pub fn is_weavable(op: &RaOp) -> bool {
    is_fusible(op) && !matches!(op, RaOp::Product)
}

/// Find fusion candidate groups: maximal connected sets of weavable
/// operators, each returned in topological order. Groups with fewer than
/// two operators are omitted (there is nothing to fuse).
///
/// # Examples
///
/// ```
/// use kw_core::{find_candidates, FusionOptions, QueryPlan};
/// use kw_primitives::RaOp;
/// use kw_relational::{Predicate, Schema};
///
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", Schema::uniform_u32(2));
/// let s1 = plan.add_op(RaOp::Select { pred: Predicate::True }, &[t])?;
/// let srt = plan.add_op(RaOp::Sort { attrs: vec![1] }, &[s1])?;
/// let s2 = plan.add_op(RaOp::Select { pred: Predicate::True }, &[srt])?;
/// let s3 = plan.add_op(RaOp::Select { pred: Predicate::True }, &[s2])?;
/// plan.mark_output(s3);
/// // SORT bounds the candidates: only {s2, s3} is a group of >= 2 operators.
/// let groups = find_candidates(&plan, FusionOptions::default());
/// assert_eq!(groups, vec![vec![s2, s3]]);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn find_candidates(plan: &QueryPlan, opts: FusionOptions) -> Vec<Vec<NodeId>> {
    let weavable: BTreeSet<NodeId> = plan
        .operator_nodes()
        .filter(|(_, op, _)| is_weavable(op))
        .map(|(id, _, _)| id)
        .collect();

    // Union-find over weavable nodes.
    let mut parent: Vec<usize> = (0..plan.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }

    for &id in &weavable {
        // Producer-consumer edges between weavable operators.
        for &p in plan.producers(id) {
            if weavable.contains(&p) {
                union(&mut parent, p.0, id.0);
            }
        }
        // Input-dependence edges: operators sharing any producer node.
        if opts.input_dependence {
            for &p in plan.producers(id) {
                for c in plan.consumers(p) {
                    if c != id && weavable.contains(&c) {
                        union(&mut parent, c.0, id.0);
                    }
                }
            }
        }
    }

    let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> = Default::default();
    for &id in &weavable {
        let root = find(&mut parent, id.0);
        groups.entry(root).or_default().push(id);
    }
    let mut out: Vec<Vec<NodeId>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    for g in &mut out {
        g.sort(); // insertion order is topological
    }
    out.sort_by_key(|g| g[0]);
    out
}

/// The kernel-dependent boundary nodes of a plan (SORT / AGGREGATE — the
/// operators that bound fusion regions, per Figure 9).
pub fn kernel_boundaries(plan: &QueryPlan) -> Vec<NodeId> {
    plan.operator_nodes()
        .filter(|(_, op, _)| !is_fusible(op))
        .map(|(id, _, _)| id)
        .collect()
}

/// Whether a plan node is an input node.
pub fn is_input_node(plan: &QueryPlan, id: NodeId) -> bool {
    matches!(plan.node(id), PlanNode::Input { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::{Predicate, Schema};

    fn sel() -> RaOp {
        RaOp::Select {
            pred: Predicate::True,
        }
    }

    #[test]
    fn chain_is_one_group() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let a = p.add_op(sel(), &[t]).unwrap();
        let b = p.add_op(sel(), &[a]).unwrap();
        let c = p.add_op(sel(), &[b]).unwrap();
        p.mark_output(c);
        let g = find_candidates(&p, FusionOptions::default());
        assert_eq!(g, vec![vec![a, b, c]]);
    }

    #[test]
    fn sort_bounds_groups() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let a = p.add_op(sel(), &[t]).unwrap();
        let b = p.add_op(sel(), &[a]).unwrap();
        let s = p.add_op(RaOp::Sort { attrs: vec![1] }, &[b]).unwrap();
        let c = p.add_op(sel(), &[s]).unwrap();
        let d = p.add_op(sel(), &[c]).unwrap();
        p.mark_output(d);
        let g = find_candidates(&p, FusionOptions::default());
        assert_eq!(g, vec![vec![a, b], vec![c, d]]);
        assert_eq!(kernel_boundaries(&p), vec![s]);
    }

    #[test]
    fn input_dependence_connects_siblings() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let a = p.add_op(sel(), &[t]).unwrap();
        let b = p.add_op(sel(), &[t]).unwrap();
        p.mark_output(a);
        p.mark_output(b);

        let with = find_candidates(&p, FusionOptions::default());
        assert_eq!(with, vec![vec![a, b]]);

        let without = find_candidates(
            &p,
            FusionOptions {
                input_dependence: false,
            },
        );
        assert!(without.is_empty());
    }

    #[test]
    fn joins_and_selects_group_together() {
        let mut p = QueryPlan::new();
        let x = p.add_input("x", Schema::uniform_u32(2));
        let y = p.add_input("y", Schema::uniform_u32(2));
        let sx = p.add_op(sel(), &[x]).unwrap();
        let sy = p.add_op(sel(), &[y]).unwrap();
        let j = p.add_op(RaOp::Join { key_len: 1 }, &[sx, sy]).unwrap();
        p.mark_output(j);
        let g = find_candidates(&p, FusionOptions::default());
        assert_eq!(g, vec![vec![sx, sy, j]]);
    }

    #[test]
    fn product_is_not_weavable() {
        assert!(!is_weavable(&RaOp::Product));
        assert!(is_weavable(&RaOp::Join { key_len: 1 }));
        assert!(!is_weavable(&RaOp::Sort { attrs: vec![0] }));
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let a = p.add_op(RaOp::Product, &[t, t]).unwrap();
        let b = p.add_op(sel(), &[a]).unwrap();
        p.mark_output(b);
        assert!(find_candidates(&p, FusionOptions::default()).is_empty());
    }
}
