//! Admission control: predict peak device memory per execution mode and
//! choose the cheapest mode that fits *before* running anything.
//!
//! The paper's §2.3 benefit #4 is that fusion "admits larger resident
//! inputs": fused steps never materialize the intermediates inside a fusion
//! set, so the predicted resident peak of a fused plan is smaller and a
//! larger input still fits [`AdmittedMode::Resident`]. When Resident does
//! not fit, the ladder continues downward: [`AdmittedMode::Staged`] (free
//! operator results after every step, the Fig. 21 setup) and, for plans
//! with a [`ChunkStrategy`] (row-sliceable, hash-partitionable, or
//! merge-aggregable), [`AdmittedMode::Chunked`] streaming.
//!
//! Predictions replay the compiled plan's buffer schedule — same
//! refcounts, same gather-scratch, same release points as the executor —
//! through an unbounded [`kw_gpu_sim::ArenaLayout`] planner, over
//! *estimated* relation sizes (row-count upper estimates per operator;
//! inputs use their actual bound sizes). The executor sizes its scratch
//! arena with the same replay, so the predicted peak and the arena
//! reservation are the same number by construction; an estimate that
//! under-shoots surfaces as a typed arena overflow (or a counted spill),
//! handled by the resilient driver's re-admission, not here.

use std::collections::BTreeMap;

use kw_gpu_sim::{ArenaLayout, ArenaSlice};
use kw_primitives::RaOp;
use kw_relational::Relation;

use crate::{
    is_elementwise, select_chunk_strategy, ChunkStrategy, CompiledPlan, ExecMode, NodeId, PlanNode,
    QueryPlan, Result, WeaverError,
};

/// Hard ceiling on the chunk count the ladder will try.
pub const MAX_CHUNKS: usize = 1024;

/// An execution mode the admission controller can choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmittedMode {
    /// Everything stays on the device (fastest; largest footprint).
    Resident,
    /// Operator results round-trip to the host after every step.
    Staged,
    /// Chunked streaming with double buffering, under the plan's
    /// [`ChunkStrategy`] (row slices, hash buckets, or partial-aggregate
    /// slices).
    Chunked {
        /// Number of chunks (row slices or hash buckets) the inputs are
        /// split into.
        chunks: usize,
    },
}

impl std::fmt::Display for AdmittedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmittedMode::Resident => write!(f, "resident"),
            AdmittedMode::Staged => write!(f, "staged"),
            AdmittedMode::Chunked { chunks } => write!(f, "chunked({chunks})"),
        }
    }
}

/// The admission controller's pre-flight verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionReport {
    /// Device bytes available when admission ran.
    pub capacity: u64,
    /// Predicted peak device bytes in resident mode.
    pub resident_peak: u64,
    /// Predicted peak device bytes in staged mode.
    pub staged_peak: u64,
    /// For plans with a chunk strategy: the smallest power-of-two chunk
    /// count whose predicted per-chunk peak fits, with that peak.
    pub chunked: Option<(usize, u64)>,
    /// Whether the plan is elementwise (row-sliceable without
    /// repartitioning).
    pub elementwise: bool,
    /// The chunk strategy available to this plan, if any — `None` means the
    /// ladder has no rung below Staged.
    pub strategy: Option<ChunkStrategy>,
    /// The cheapest mode predicted to fit.
    pub chosen: AdmittedMode,
}

/// Estimate output rows of one operator from its input row estimates.
///
/// Streaming/reordering operators are row-preserving upper bounds; joins use
/// the larger side (a heuristic, not a bound — the degradation ladder covers
/// underestimates); products multiply.
fn estimate_op_rows(op: &RaOp, ins: &[u64]) -> u64 {
    match op {
        RaOp::Select { .. }
        | RaOp::Project { .. }
        | RaOp::Map { .. }
        | RaOp::Unique
        | RaOp::Sort { .. }
        | RaOp::Aggregate { .. } => ins[0],
        RaOp::Join { .. } => ins[0].max(ins[1]),
        RaOp::Product => ins[0].saturating_mul(ins[1]),
        RaOp::SemiJoin { .. } | RaOp::AntiJoin { .. } | RaOp::Difference => ins[0],
        RaOp::Union => ins[0].saturating_add(ins[1]),
        RaOp::Intersect => ins[0].min(ins[1]),
    }
}

/// Estimated row count per plan node: actual sizes for bound inputs,
/// [`estimate_op_rows`] propagated topologically for operators.
fn estimated_rows(
    plan: &QueryPlan,
    bindings: &[(&str, &Relation)],
) -> Result<BTreeMap<NodeId, u64>> {
    let mut rows = BTreeMap::new();
    for id in plan.node_ids() {
        let n = match plan.node(id) {
            PlanNode::Input { name, .. } => bindings
                .iter()
                .find(|(b, _)| b == name)
                .map(|(_, r)| r.len() as u64)
                .ok_or_else(|| WeaverError::binding(format!("no relation bound to '{name}'")))?,
            PlanNode::Operator { op, inputs } => {
                let ins: Vec<u64> = inputs.iter().map(|i| rows[i]).collect();
                estimate_op_rows(op, &ins)
            }
        };
        rows.insert(id, n);
    }
    Ok(rows)
}

/// Row estimates for a chunked execution at `chunks` chunks: *input* row
/// counts shrink by the chunk factor (a row slice or hash bucket holds
/// ~1/chunks of each input) and the shrunken counts re-propagate through
/// [`estimate_op_rows`]. Re-propagating — rather than dividing every node's
/// rows uniformly — is what prices a hash-partitioned join correctly: the
/// per-bucket join sees bucket-pair inputs, so its estimate is
/// `max(l/chunks, r/chunks)`, the bucket-pair resident bytes, not the whole
/// join output divided by the chunk count.
fn chunked_rows(
    plan: &QueryPlan,
    rows: &BTreeMap<NodeId, u64>,
    chunks: u64,
) -> BTreeMap<NodeId, u64> {
    let mut scaled = BTreeMap::new();
    for id in plan.node_ids() {
        let n = match plan.node(id) {
            PlanNode::Input { .. } => rows[&id].div_ceil(chunks),
            PlanNode::Operator { op, inputs } => {
                let ins: Vec<u64> = inputs.iter().map(|i| scaled[i]).collect();
                estimate_op_rows(op, &ins)
            }
        };
        scaled.insert(id, n);
    }
    scaled
}

/// Estimated buffer bytes per node, with every row count divided (rounding
/// up) by `chunks`.
fn node_bytes(
    plan: &QueryPlan,
    rows: &BTreeMap<NodeId, u64>,
    chunks: u64,
) -> BTreeMap<NodeId, u64> {
    rows.iter()
        .map(|(&id, &n)| {
            (
                id,
                n.div_ceil(chunks) * plan.schema(id).tuple_bytes() as u64,
            )
        })
        .collect()
}

/// Reference counts of the executor's buffer liveness: each step counts a
/// unique input once; every marked plan output holds one extra reference.
fn buffer_refcounts(plan: &QueryPlan, compiled: &CompiledPlan) -> BTreeMap<NodeId, usize> {
    let mut refcount: BTreeMap<NodeId, usize> = BTreeMap::new();
    for step in &compiled.steps {
        let mut seen = Vec::new();
        for &i in &step.inputs {
            if !seen.contains(&i) {
                seen.push(i);
                *refcount.entry(i).or_insert(0) += 1;
            }
        }
    }
    for &o in plan.outputs() {
        *refcount.entry(o).or_insert(0) += 1;
    }
    refcount
}

/// Predicted peak device bytes: the executor's exact acquire/release
/// schedule (upload inputs once; per step acquire gather scratch + outputs,
/// release scratch, release dead inputs; staged mode additionally re-stages
/// consumed intermediates and releases outputs after download) replayed
/// through an unbounded [`ArenaLayout`] planner.
///
/// The executor sizes its upfront [`kw_gpu_sim::ScratchArena`] reservation
/// with this same replay, so the prediction and the reservation are one
/// computation: the arena reservation *is* the predicted peak, the memory
/// tracker charges exactly that, and any misprediction surfaces as a typed
/// [`kw_gpu_sim::SimError::ArenaOverflow`] (or a counted spill) at the
/// offending sub-allocation instead of a silent mid-plan OOM.
///
/// [`ArenaLayout`]: kw_gpu_sim::ArenaLayout
fn predict_peak(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bytes: &BTreeMap<NodeId, u64>,
    mode: ExecMode,
) -> u64 {
    replay_arena_schedule(plan, compiled, bytes, mode).unwrap_or(u64::MAX)
}

/// Replay the executor's buffer schedule through an unbounded planner
/// layout and return its high-water mark. Fails only on byte-count
/// overflow (pathological `Product` estimates), which [`predict_peak`]
/// maps to "fits nothing".
fn replay_arena_schedule(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bytes: &BTreeMap<NodeId, u64>,
    mode: ExecMode,
) -> std::result::Result<u64, kw_gpu_sim::SimError> {
    let mut refcount = buffer_refcounts(plan, compiled);
    let mut layout = ArenaLayout::planner();
    let mut held: BTreeMap<NodeId, ArenaSlice> = BTreeMap::new();

    for id in plan.node_ids() {
        if matches!(plan.node(id), PlanNode::Input { .. })
            && refcount.get(&id).copied().unwrap_or(0) > 0
        {
            held.insert(id, layout.acquire(bytes[&id])?);
        }
    }

    for step in &compiled.steps {
        if mode == ExecMode::Staged {
            for &i in &step.inputs {
                if let std::collections::btree_map::Entry::Vacant(e) = held.entry(i) {
                    e.insert(layout.acquire(bytes[&i])?);
                }
            }
        }

        let out_bytes: u64 = step.outputs.iter().map(|o| bytes[o]).sum();
        let scratch = layout.acquire(out_bytes)?; // gather scratch
        for &o in &step.outputs {
            let slice = layout.acquire(bytes[&o])?;
            held.insert(o, slice);
        }
        layout.release(scratch)?;

        let mut seen = Vec::new();
        for &i in &step.inputs {
            if seen.contains(&i) {
                continue;
            }
            seen.push(i);
            let rc = refcount.get_mut(&i).expect("counted above");
            *rc -= 1;
            let intermediate = !matches!(plan.node(i), PlanNode::Input { .. });
            if *rc == 0 || (mode == ExecMode::Staged && intermediate) {
                if let Some(slice) = held.remove(&i) {
                    layout.release(slice)?;
                }
            }
        }

        if mode == ExecMode::Staged {
            for &o in &step.outputs {
                if let Some(slice) = held.remove(&o) {
                    layout.release(slice)?;
                }
            }
        }
    }
    Ok(layout.high_water())
}

/// The arena reservation `execute_compiled` makes for `plan` in `mode`:
/// [`predict_peak`] over whole-input row estimates. Admission's
/// `resident_peak`/`staged_peak` report exactly this value, which is what
/// makes the predictor-fidelity contract (`MemoryTracker::peak()` equals
/// the admission peak bit-exactly) hold by construction.
pub(crate) fn predict_reservation(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    mode: ExecMode,
) -> Result<u64> {
    let rows = estimated_rows(plan, bindings)?;
    let whole = node_bytes(plan, &rows, 1);
    Ok(predict_peak(plan, compiled, &whole, mode))
}

/// Choose the cheapest execution mode predicted to fit in `capacity` device
/// bytes.
///
/// # Errors
///
/// Returns [`WeaverError::Binding`] for unbound plan inputs and
/// [`WeaverError::Admission`] when no mode is predicted to fit (including
/// chunked at [`MAX_CHUNKS`], or non-elementwise plans whose staged footprint
/// exceeds capacity).
pub fn admit(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    capacity: u64,
) -> Result<AdmissionReport> {
    let rows = estimated_rows(plan, bindings)?;
    let whole = node_bytes(plan, &rows, 1);
    let resident_peak = predict_peak(plan, compiled, &whole, ExecMode::Resident);
    let staged_peak = predict_peak(plan, compiled, &whole, ExecMode::Staged);
    let elementwise = is_elementwise(plan);
    let strategy = select_chunk_strategy(plan);

    let chunked = strategy.and_then(|_| {
        let mut chunks = 2usize;
        while chunks <= MAX_CHUNKS {
            let scaled = node_bytes(plan, &chunked_rows(plan, &rows, chunks as u64), 1);
            let peak = predict_peak(plan, compiled, &scaled, ExecMode::Resident);
            if peak <= capacity {
                return Some((chunks, peak));
            }
            chunks *= 2;
        }
        None
    });

    let chosen = if resident_peak <= capacity {
        AdmittedMode::Resident
    } else if staged_peak <= capacity {
        AdmittedMode::Staged
    } else if let Some((chunks, _)) = chunked {
        AdmittedMode::Chunked { chunks }
    } else {
        return Err(WeaverError::admission(format!(
            "no mode fits {capacity} device bytes: resident needs {resident_peak}, staged \
             {staged_peak}, {}",
            match strategy {
                Some(s) => format!("chunked ({s}) still over capacity at {MAX_CHUNKS} chunks"),
                None =>
                    "plan admits no chunk strategy so chunked streaming is unavailable".to_string(),
            }
        )));
    };

    Ok(AdmissionReport {
        capacity,
        resident_peak,
        staged_peak,
        chunked,
        elementwise,
        strategy,
        chosen,
    })
}

/// The admission controller's verdict on a *batch* of concurrent queries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAdmission {
    /// Device bytes available when admission ran.
    pub capacity: u64,
    /// Per-query verdicts, in batch order.
    pub per_query: Vec<AdmissionReport>,
    /// Sum of the per-query resident peaks — the footprint the device must
    /// hold when every query of the batch is in flight at once.
    pub concurrent_peak: u64,
}

/// One query of a batch as [`admit_batch`] sees it: the plan, its compiled
/// form, and its input bindings.
pub type BatchAdmissionQuery<'a> = (
    &'a QueryPlan,
    &'a CompiledPlan,
    &'a [(&'a str, &'a Relation)],
);

/// Admit a batch of queries for *concurrent* resident execution.
///
/// The multi-query scheduler keeps every query of a batch GPU-resident for
/// its whole flight, so unlike [`admit`]'s per-query ladder the batch has no
/// cheaper rung to degrade to: each query must fit resident on its own AND
/// the sum of resident peaks must fit together. Callers wanting degradation
/// should shrink the batch (or fall back to [`admit`] per query) instead.
///
/// # Errors
///
/// Returns [`WeaverError::Binding`] for unbound plan inputs and
/// [`WeaverError::Admission`] when the concurrent footprint exceeds
/// `capacity`.
pub fn admit_batch(queries: &[BatchAdmissionQuery<'_>], capacity: u64) -> Result<BatchAdmission> {
    let mut per_query = Vec::with_capacity(queries.len());
    let mut concurrent_peak = 0u64;
    for &(plan, compiled, bindings) in queries {
        // Per-query prediction against the full capacity: a query that
        // cannot fit alone can certainly not fit alongside the others.
        let report = admit(plan, compiled, bindings, capacity)?;
        concurrent_peak = concurrent_peak.saturating_add(report.resident_peak);
        per_query.push(report);
    }
    if concurrent_peak > capacity {
        return Err(WeaverError::admission(format!(
            "batch of {} queries needs {concurrent_peak} concurrent device bytes, only \
             {capacity} available; shrink the batch or run queries solo",
            queries.len()
        )));
    }
    Ok(BatchAdmission {
        capacity,
        per_query,
        concurrent_peak,
    })
}

/// One query's place in a [`BatchWavePlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAdmission {
    /// Fits resident; scheduled concurrently inside the given wave.
    Wave {
        /// The per-query admission verdict (against the full capacity).
        report: AdmissionReport,
        /// Index of the wave the query was packed into.
        wave: usize,
    },
    /// Too large to fit resident even alone: runs after the waves via the
    /// Resident → Staged → Chunked degradation ladder.
    Ladder {
        /// The per-query admission verdict (a non-resident mode fits).
        report: AdmissionReport,
    },
    /// No execution mode fits at all; the query cannot run on this device.
    Rejected {
        /// The admission error explaining why.
        reason: String,
    },
}

/// An elastic batch admission verdict: instead of rejecting a batch whose
/// concurrent resident footprint exceeds capacity, the planner partitions
/// it into sequential waves that each fit (first-fit-decreasing over
/// resident peaks), routes queries too large for a solo wave down the
/// degradation ladder, and rejects only queries no mode can run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchWavePlan {
    /// Device bytes available when planning ran.
    pub capacity: u64,
    /// Per-query placements, in batch order.
    pub per_query: Vec<QueryAdmission>,
    /// Wave membership: query indices per wave, in issue order (descending
    /// resident peak, ties by batch order — the first-fit-decreasing pack).
    pub waves: Vec<Vec<usize>>,
    /// Query indices routed down the ladder, in batch order.
    pub ladder: Vec<usize>,
    /// The largest single wave's summed resident peak — the concurrent
    /// footprint the device must actually hold.
    pub concurrent_peak: u64,
}

/// Partition a batch into admission waves (first-fit-decreasing over
/// predicted resident peaks) so every wave's concurrent footprint fits in
/// `capacity` device bytes.
///
/// Unlike [`admit_batch`] this never fails the whole batch: queries whose
/// resident peak exceeds capacity alone become [`QueryAdmission::Ladder`]
/// (a cheaper mode fits), and queries no mode can run become
/// [`QueryAdmission::Rejected`] — both are per-query verdicts the caller
/// can act on without losing the rest of the batch.
pub fn plan_waves(queries: &[BatchAdmissionQuery<'_>], capacity: u64) -> BatchWavePlan {
    let mut per_query: Vec<QueryAdmission> = Vec::with_capacity(queries.len());
    for &(plan, compiled, bindings) in queries {
        per_query.push(match admit(plan, compiled, bindings, capacity) {
            Ok(report) if report.chosen == AdmittedMode::Resident => QueryAdmission::Wave {
                report,
                wave: usize::MAX, // patched below by the packer
            },
            Ok(report) => QueryAdmission::Ladder { report },
            Err(e) => QueryAdmission::Rejected {
                reason: e.to_string(),
            },
        });
    }

    // First-fit-decreasing: sort wave-eligible queries by resident peak
    // (descending, batch order breaking ties) and drop each into the first
    // wave with room. Every such query fits an empty wave by construction
    // (chosen == Resident means resident_peak <= capacity).
    let mut eligible: Vec<(usize, u64)> = per_query
        .iter()
        .enumerate()
        .filter_map(|(qi, a)| match a {
            QueryAdmission::Wave { report, .. } => Some((qi, report.resident_peak)),
            _ => None,
        })
        .collect();
    eligible.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut waves: Vec<Vec<usize>> = Vec::new();
    let mut wave_free: Vec<u64> = Vec::new();
    for (qi, peak) in eligible {
        let slot = wave_free.iter().position(|&f| f >= peak);
        let wi = match slot {
            Some(wi) => wi,
            None => {
                waves.push(Vec::new());
                wave_free.push(capacity);
                waves.len() - 1
            }
        };
        waves[wi].push(qi);
        wave_free[wi] -= peak;
        if let QueryAdmission::Wave { wave, .. } = &mut per_query[qi] {
            *wave = wi;
        }
    }

    let ladder: Vec<usize> = per_query
        .iter()
        .enumerate()
        .filter_map(|(qi, a)| matches!(a, QueryAdmission::Ladder { .. }).then_some(qi))
        .collect();
    let concurrent_peak = waves
        .iter()
        .zip(&wave_free)
        .map(|(_, &f)| capacity - f)
        .max()
        .unwrap_or(0);

    BatchWavePlan {
        capacity,
        per_query,
        waves,
        ladder,
        concurrent_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, WeaverConfig};
    use kw_relational::{gen, CmpOp, Predicate, Value};

    fn select_chain(schema: kw_relational::Schema, depth: usize) -> QueryPlan {
        let mut p = QueryPlan::new();
        let mut cur = p.add_input("t", schema);
        for a in 0..depth {
            cur = p
                .add_op(
                    RaOp::Select {
                        pred: Predicate::cmp(a % 4, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                    },
                    &[cur],
                )
                .unwrap();
        }
        p.mark_output(cur);
        p
    }

    #[test]
    fn big_capacity_admits_resident() {
        let input = gen::micro_input(10_000, 1);
        let plan = select_chain(input.schema().clone(), 3);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let report = admit(&plan, &compiled, &[("t", &input)], u64::MAX).unwrap();
        assert_eq!(report.chosen, AdmittedMode::Resident);
        assert!(report.resident_peak > 0);
    }

    #[test]
    fn fusion_widens_what_fits_resident() {
        // A widening MAP whose fat intermediate a fused kernel never
        // materializes: the baseline must hold it in device memory, so its
        // predicted resident peak is strictly larger (§2.3 benefit #4).
        let input = gen::micro_input(10_000, 2);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let wide = plan
            .add_op(
                RaOp::Map {
                    exprs: (0..8)
                        .map(|a| kw_relational::Expr::attr(a.min(2)))
                        .collect(),
                    key_arity: 1,
                },
                &[t],
            )
            .unwrap();
        let narrow = plan
            .add_op(
                RaOp::Project {
                    attrs: vec![0, 1],
                    key_arity: 1,
                },
                &[wide],
            )
            .unwrap();
        plan.mark_output(narrow);
        let fused = compile(&plan, &WeaverConfig::default()).unwrap();
        let base = compile(&plan, &WeaverConfig::default().baseline()).unwrap();
        let b = &[("t", &input)];
        let fused_peak = admit(&plan, &fused, b, u64::MAX).unwrap().resident_peak;
        let base_peak = admit(&plan, &base, b, u64::MAX).unwrap().resident_peak;
        assert!(
            fused_peak < base_peak,
            "fused {fused_peak} should undercut baseline {base_peak}"
        );
        // A capacity strictly between the two admits the fused plan Resident
        // and pushes the baseline down the ladder.
        let capacity = (fused_peak + base_peak) / 2;
        assert_eq!(
            admit(&plan, &fused, b, capacity).unwrap().chosen,
            AdmittedMode::Resident
        );
        assert_ne!(
            admit(&plan, &base, b, capacity).unwrap().chosen,
            AdmittedMode::Resident
        );
    }

    #[test]
    fn tiny_capacity_degrades_to_chunked_for_elementwise_plans() {
        let input = gen::micro_input(50_000, 3);
        let plan = select_chain(input.schema().clone(), 2);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let report = admit(
            &plan,
            &compiled,
            &[("t", &input)],
            input.byte_size() as u64 / 4,
        )
        .unwrap();
        assert!(matches!(report.chosen, AdmittedMode::Chunked { .. }));
        let (chunks, peak) = report.chunked.unwrap();
        assert!(chunks >= 2 && peak <= report.capacity);
    }

    #[test]
    fn impossible_capacity_rejected_with_typed_error() {
        // A join now HAS a chunk strategy (hash partitioning), so at an
        // absurd capacity the rejection cites the chunk ceiling, not a
        // missing strategy.
        let (l, r) = gen::join_inputs(5_000, 2, 0.5, 4);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        plan.mark_output(j);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let err = admit(&plan, &compiled, &[("x", &l), ("y", &r)], 64).unwrap_err();
        assert!(matches!(err, WeaverError::Admission { .. }), "{err}");
        assert!(err.to_string().contains("hash-partition"), "{err}");
        assert!(err.to_string().contains("over capacity"), "{err}");

        // A full sort has no strategy at all: the rejection says so.
        let input = gen::micro_input(5_000, 4);
        let mut sorty = QueryPlan::new();
        let t = sorty.add_input("t", input.schema().clone());
        let s = sorty.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        sorty.mark_output(s);
        let compiled = compile(&sorty, &WeaverConfig::default()).unwrap();
        let err = admit(&sorty, &compiled, &[("t", &input)], 64).unwrap_err();
        assert!(matches!(err, WeaverError::Admission { .. }), "{err}");
        assert!(err.to_string().contains("no chunk strategy"), "{err}");
    }

    #[test]
    fn joins_admit_chunked_on_small_devices() {
        // A join whose staged peak exceeds capacity degrades to hash
        // partitioning; the predicted per-bucket peak prices bucket-pair
        // inputs, so it fits once the bucket count divides the inputs down.
        let (l, r) = gen::join_inputs(50_000, 2, 0.5, 14);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        plan.mark_output(j);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let bindings: &[(&str, &Relation)] = &[("x", &l), ("y", &r)];
        let solo = admit(&plan, &compiled, bindings, u64::MAX).unwrap();
        assert_eq!(solo.strategy, Some(ChunkStrategy::HashPartition));

        let capacity = solo.staged_peak / 4;
        let report = admit(&plan, &compiled, bindings, capacity).unwrap();
        assert!(
            matches!(report.chosen, AdmittedMode::Chunked { .. }),
            "{report:?}"
        );
        let (chunks, peak) = report.chunked.unwrap();
        assert!(chunks >= 2 && peak <= capacity, "{report:?}");
    }

    #[test]
    fn unbound_input_is_a_binding_error() {
        let input = gen::micro_input(10, 5);
        let plan = select_chain(input.schema().clone(), 1);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let err = admit(&plan, &compiled, &[("wrong", &input)], u64::MAX).unwrap_err();
        assert!(matches!(err, WeaverError::Binding { .. }));
    }

    #[test]
    fn wave_plan_packs_first_fit_decreasing() {
        let small = gen::micro_input(10_000, 7);
        let big = gen::micro_input(40_000, 8);
        let ps = select_chain(small.schema().clone(), 2);
        let pb = select_chain(big.schema().clone(), 2);
        let cs = compile(&ps, &WeaverConfig::default()).unwrap();
        let cb = compile(&pb, &WeaverConfig::default()).unwrap();
        let bs: &[(&str, &Relation)] = &[("t", &small)];
        let bb: &[(&str, &Relation)] = &[("t", &big)];

        let small_peak = admit(&ps, &cs, bs, u64::MAX).unwrap().resident_peak;
        let big_peak = admit(&pb, &cb, bb, u64::MAX).unwrap().resident_peak;
        // Capacity holds one big + one small together, but not two bigs.
        let capacity = big_peak + small_peak + small_peak / 2;

        let queries: Vec<BatchAdmissionQuery<'_>> = vec![
            (&ps, &cs, bs),
            (&pb, &cb, bb),
            (&ps, &cs, bs),
            (&pb, &cb, bb),
        ];
        let plan = plan_waves(&queries, capacity);
        assert_eq!(plan.waves.len(), 2, "{plan:?}");
        assert!(plan.ladder.is_empty());
        assert_eq!(plan.concurrent_peak, big_peak + small_peak);
        // Decreasing order: each wave leads with a big query, and the
        // smalls backfill the remaining room.
        assert_eq!(plan.waves[0], vec![1, 0]);
        assert_eq!(plan.waves[1], vec![3, 2]);
        for (qi, a) in plan.per_query.iter().enumerate() {
            match a {
                QueryAdmission::Wave { wave, .. } => {
                    assert!(plan.waves[*wave].contains(&qi));
                }
                other => panic!("query {qi} should be wave-admitted, got {other:?}"),
            }
        }
    }

    #[test]
    fn wave_plan_routes_oversized_queries_to_the_ladder() {
        let input = gen::micro_input(50_000, 9);
        let plan = select_chain(input.schema().clone(), 2);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let bindings: &[(&str, &Relation)] = &[("t", &input)];
        let solo = admit(&plan, &compiled, bindings, u64::MAX).unwrap();

        // Capacity below the resident peak: no wave can hold the query, but
        // staged/chunked modes still fit, so it rides the ladder.
        let capacity = solo.resident_peak / 2;
        let wave_plan = plan_waves(&[(&plan, &compiled, bindings)], capacity);
        assert!(wave_plan.waves.is_empty());
        assert_eq!(wave_plan.ladder, vec![0]);
        assert!(matches!(
            wave_plan.per_query[0],
            QueryAdmission::Ladder { .. }
        ));

        // An unbound input is rejected per query, not per batch.
        let wrong: &[(&str, &Relation)] = &[("wrong", &input)];
        let mixed = plan_waves(
            &[(&plan, &compiled, bindings), (&plan, &compiled, wrong)],
            u64::MAX,
        );
        assert!(matches!(mixed.per_query[0], QueryAdmission::Wave { .. }));
        assert!(matches!(
            mixed.per_query[1],
            QueryAdmission::Rejected { .. }
        ));
        assert_eq!(mixed.waves.len(), 1);
    }

    #[test]
    fn batch_admission_sums_concurrent_resident_peaks() {
        let input = gen::micro_input(10_000, 6);
        let plan = select_chain(input.schema().clone(), 2);
        let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
        let bindings: &[(&str, &Relation)] = &[("t", &input)];

        let solo = admit(&plan, &compiled, bindings, u64::MAX).unwrap();
        let batch = admit_batch(
            &[(&plan, &compiled, bindings), (&plan, &compiled, bindings)],
            u64::MAX,
        )
        .unwrap();
        assert_eq!(batch.per_query.len(), 2);
        assert_eq!(batch.concurrent_peak, 2 * solo.resident_peak);

        // A capacity that fits one query resident but not two rejects the
        // batch: concurrent execution has no cheaper rung to degrade to.
        let capacity = solo.resident_peak + solo.resident_peak / 2;
        assert!(admit(&plan, &compiled, bindings, capacity).is_ok());
        let err = admit_batch(
            &[(&plan, &compiled, bindings), (&plan, &compiled, bindings)],
            capacity,
        )
        .unwrap_err();
        assert!(matches!(err, WeaverError::Admission { .. }), "{err}");
    }
}
