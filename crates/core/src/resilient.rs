//! Resilient execution: admission control + bounded retry + a
//! Resident → Staged → Chunked degradation ladder.
//!
//! [`execute_resilient`] wraps the plain executor with three policies:
//!
//! 1. **Admission** ([`crate::admit`]) predicts peak device bytes per mode
//!    and starts at the cheapest rung predicted to fit, instead of
//!    discovering OOM halfway through a run.
//! 2. **Retry** — transient injected faults (PCIe transfer, kernel launch,
//!    allocation — see [`kw_gpu_sim::SimError::is_transient`]) are retried
//!    on the same rung with exponential backoff; the backoff wait is charged
//!    to the device timeline so reports stay honest about elapsed time.
//! 3. **Degradation** — a mid-run capacity miss (admission under-estimated)
//!    drops one rung: Resident → Staged → Chunked(c) → Chunked(2c), chunked
//!    rungs only for plans with a [`crate::ChunkStrategy`] (row-sliceable,
//!    hash-partitionable, or merge-aggregable) and only up to
//!    [`crate::admission::MAX_CHUNKS`].
//!
//! Every completed run carries a [`ResilienceReport`] in
//! [`PlanReport::resilience`] recording the admitted mode, the final mode,
//! retries, faults survived, degradations taken and total backoff charged.

use kw_gpu_sim::Device;
use kw_relational::Relation;

use crate::admission::{admit, AdmissionReport, AdmittedMode, MAX_CHUNKS};
use crate::chunk_strategy::select_chunk_strategy;
use crate::chunked::execute_chunked_compiled;
use crate::error::LadderStop;
use crate::{compile, CompiledPlan, ExecMode, PlanReport, QueryPlan, Result, WeaverConfig};

/// Retry/degradation policy for [`execute_resilient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Transient-fault retries allowed per ladder rung before the fault
    /// propagates. The budget resets when the driver changes rung.
    pub max_retries: u32,
    /// Backoff charged (simulated seconds) before the first retry.
    pub base_backoff_seconds: f64,
    /// Multiplier applied to the backoff after each retry on the same rung.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_backoff_seconds: 1e-3,
            backoff_multiplier: 2.0,
        }
    }
}

/// One rung-change the driver took after a mid-run capacity miss.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// The rung that ran out of memory.
    pub from: AdmittedMode,
    /// The rung the driver dropped to.
    pub to: AdmittedMode,
    /// The capacity error that forced the drop.
    pub reason: String,
}

/// How a resilient execution got to its answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The admission controller's pre-flight verdict.
    pub admission: AdmissionReport,
    /// Mode admission chose before execution started.
    pub admitted: AdmittedMode,
    /// Mode that actually produced the answer.
    pub final_mode: AdmittedMode,
    /// Total executions attempted (1 = clean first run).
    pub attempts: u32,
    /// Re-executions caused by transient faults.
    pub retries: u32,
    /// Transient injected faults the driver absorbed without failing the
    /// query.
    pub faults_survived: u32,
    /// Rung drops taken after mid-run capacity misses, in order.
    pub degradations: Vec<Degradation>,
    /// Simulated seconds of retry backoff charged to the device timeline.
    pub backoff_seconds: f64,
}

/// Compile `plan` and run it resiliently (admission, retry, degradation).
///
/// # Errors
///
/// Propagates compile errors, admission rejections
/// ([`crate::WeaverError::Admission`]), transient faults that exhaust the
/// per-rung retry budget, capacity misses with no rung left below, and all
/// fatal errors.
///
/// # Examples
///
/// ```
/// use kw_core::{execute_resilient, QueryPlan, RetryPolicy, WeaverConfig};
/// use kw_gpu_sim::{Device, DeviceConfig, FaultConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{gen, CmpOp, Predicate, Value};
///
/// let input = gen::micro_input(10_000, 7);
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", input.schema().clone());
/// let s = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1 << 31)) },
///     &[t],
/// )?;
/// plan.mark_output(s);
///
/// let mut device = Device::new(DeviceConfig::fermi_c2050());
/// device.inject_faults(FaultConfig::uniform(42, 0.05)); // 5% fault rate
/// let report = execute_resilient(
///     &plan, &[("t", &input)], &mut device,
///     &WeaverConfig::default(), &RetryPolicy::default(),
/// )?;
/// let res = report.resilience.as_ref().unwrap();
/// assert_eq!(res.attempts, res.retries + 1);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn execute_resilient(
    plan: &QueryPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    policy: &RetryPolicy,
) -> Result<PlanReport> {
    let compiled = compile(plan, config)?;
    execute_compiled_resilient(plan, &compiled, bindings, device, config, policy)
}

/// [`execute_resilient`] for an already-compiled plan.
///
/// # Errors
///
/// Same contract as [`execute_resilient`], minus compilation.
pub fn execute_compiled_resilient(
    plan: &QueryPlan,
    compiled: &CompiledPlan,
    bindings: &[(&str, &Relation)],
    device: &mut Device,
    config: &WeaverConfig,
    policy: &RetryPolicy,
) -> Result<PlanReport> {
    let free = device
        .memory()
        .capacity()
        .saturating_sub(device.memory().in_use());
    let admission = admit(plan, compiled, bindings, free)?;
    let admitted = admission.chosen;

    let mut mode = admitted;
    let mut attempts = 0u32;
    let mut retries = 0u32;
    let mut retries_this_rung = 0u32;
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut backoff_seconds = 0.0f64;

    loop {
        attempts += 1;
        // Every span this attempt emits is labelled with the attempt number
        // and the ladder rung that produced it, so a trace of a faulted run
        // shows which work was wasted and which attempt finally landed.
        device.push_scope(format!("attempt{attempts}:{mode}"));
        let result = match mode {
            AdmittedMode::Resident => {
                // The admission report already replayed the executor's
                // schedule; reserve exactly the peak it signed off on.
                let mut cfg = *config;
                cfg.mode = ExecMode::Resident;
                crate::executor::execute_compiled_sized(
                    plan,
                    compiled,
                    bindings,
                    device,
                    &cfg,
                    admission.resident_peak,
                )
            }
            AdmittedMode::Staged => {
                let mut cfg = *config;
                cfg.mode = ExecMode::Staged;
                crate::executor::execute_compiled_sized(
                    plan,
                    compiled,
                    bindings,
                    device,
                    &cfg,
                    admission.staged_peak,
                )
            }
            AdmittedMode::Chunked { chunks } => {
                // Each chunk runs resident on its scratch device; staging
                // within a chunk would defeat the point of chunking.
                let mut cfg = *config;
                cfg.mode = ExecMode::Resident;
                execute_chunked_compiled(plan, compiled, bindings, device, &cfg, chunks).map(|r| {
                    // Backoff is charged to BOTH wallclocks: the retry wait
                    // elapses whether or not transfers overlap compute, so
                    // leaving it out of either side would let
                    // `serialized_seconds < total_seconds` silently invert
                    // after a retried run. With both sides charged,
                    // `serialized >= total` reduces to the chunked report's
                    // structural `serialized >= pipelined` (pinned by
                    // `retried_chunked_run_keeps_wallclocks_ordered`).
                    PlanReport {
                        // The chunked report splits boundary transfers from
                        // the staged-intermediate residual; a plan-level
                        // report's `pcie_seconds` means *all* transfer time
                        // (as in resident/staged runs), so recombine, and
                        // let the profiler count the residual the span log
                        // cannot carry.
                        profile: {
                            let mut p = crate::ProfileReport::from_spans_with_residual(
                                device.spans(),
                                device.stats(),
                                device.config(),
                                r.pipelined_seconds + backoff_seconds,
                                r.residual_pcie_seconds,
                            );
                            // run_chunks absorbed the fork's footprint into
                            // the parent tracker, so this is the true peak.
                            p.peak_device_bytes = device.memory().peak();
                            p
                        },
                        outputs: r.outputs,
                        gpu_seconds: r.gpu_seconds,
                        pcie_seconds: r.pcie_seconds + r.residual_pcie_seconds,
                        total_seconds: r.pipelined_seconds + backoff_seconds,
                        serialized_seconds: r.serialized_seconds + backoff_seconds,
                        pipelined_seconds: Some(r.pipelined_seconds),
                        stats: *device.stats(),
                        peak_device_bytes: r.peak_device_bytes,
                        fusion_sets: compiled.fusion_sets.clone(),
                        operator_count: compiled.steps.len(),
                        resilience: None,
                        arena: r.arena,
                        free_errors: device.metrics().counter("kw_free_errors_total"),
                        first_free_error: device.first_free_error().map(String::from),
                        spans: Vec::new(),
                    }
                })
            }
        };
        device.pop_scope();

        match result {
            Ok(mut report) => {
                let m = device.metrics_mut();
                m.inc("kw_resilient_runs_total", 1);
                m.inc("kw_retries_total", u64::from(retries));
                m.inc("kw_faults_survived_total", u64::from(retries));
                m.inc("kw_degradations_total", degradations.len() as u64);
                report.resilience = Some(ResilienceReport {
                    admission,
                    admitted,
                    final_mode: mode,
                    attempts,
                    retries,
                    faults_survived: retries,
                    degradations,
                    backoff_seconds,
                });
                // The device's span log covers the whole resilient episode —
                // failed attempts, backoff and the final successful run —
                // which is the history a trace should show.
                report.spans = device.spans().to_vec();
                return Ok(report);
            }
            Err(e) if e.is_transient() && retries_this_rung < policy.max_retries => {
                let wait = policy.base_backoff_seconds
                    * policy.backoff_multiplier.powi(retries_this_rung as i32);
                device.push_scope(format!("retry{retries}", retries = retries + 1));
                device.charge_backoff(wait);
                device.pop_scope();
                backoff_seconds += wait;
                retries_this_rung += 1;
                retries += 1;
            }
            Err(e) if e.is_capacity() => match next_rung(mode, plan) {
                Ok(next) => {
                    degradations.push(Degradation {
                        from: mode,
                        to: next,
                        reason: e.to_string(),
                    });
                    mode = next;
                    retries_this_rung = 0;
                }
                Err(stop) => return Err(crate::WeaverError::ladder_exhausted(stop, e.to_string())),
            },
            Err(e) => return Err(e),
        }
    }
}

/// The rung below `mode`, or the typed [`LadderStop`] explaining why the
/// ladder has none for this plan.
fn next_rung(
    mode: AdmittedMode,
    plan: &QueryPlan,
) -> std::result::Result<AdmittedMode, LadderStop> {
    match mode {
        AdmittedMode::Resident => Ok(AdmittedMode::Staged),
        AdmittedMode::Staged => {
            if select_chunk_strategy(plan).is_some() {
                Ok(AdmittedMode::Chunked { chunks: 2 })
            } else {
                Err(LadderStop::NonElementwiseBlocksChunking)
            }
        }
        AdmittedMode::Chunked { chunks } => {
            let next = chunks.saturating_mul(2);
            if next <= MAX_CHUNKS {
                Ok(AdmittedMode::Chunked { chunks: next })
            } else {
                Err(LadderStop::MaxChunksExceeded)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeaverError;
    use kw_gpu_sim::{DeviceConfig, FaultConfig, FaultKind, ScriptedFault};
    use kw_primitives::RaOp;
    use kw_relational::{gen, CmpOp, Predicate, Value};

    fn select_plan(schema: kw_relational::Schema) -> QueryPlan {
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", schema);
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(s);
        plan
    }

    fn oracle(input: &Relation) -> Relation {
        kw_relational::ops::select(
            input,
            &Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2)),
        )
        .unwrap()
    }

    #[test]
    fn clean_run_is_single_resident_attempt() {
        let input = gen::micro_input(5_000, 31);
        let plan = select_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_resilient(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        let res = report.resilience.as_ref().unwrap();
        assert_eq!(res.admitted, AdmittedMode::Resident);
        assert_eq!(res.final_mode, AdmittedMode::Resident);
        assert_eq!((res.attempts, res.retries), (1, 0));
        assert!(res.degradations.is_empty());
        assert_eq!(dev.memory().in_use(), 0, "no leaked device bytes");
    }

    #[test]
    fn scripted_transfer_fault_is_retried_and_backoff_charged() {
        let input = gen::micro_input(5_000, 32);
        let plan = select_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        dev.inject_faults(FaultConfig::scripted(vec![ScriptedFault {
            kind: FaultKind::Transfer,
            attempt: 0,
        }]));
        let report = execute_resilient(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.outputs.values().next().unwrap(), &oracle(&input));
        let res = report.resilience.as_ref().unwrap();
        assert_eq!((res.attempts, res.retries, res.faults_survived), (2, 1, 1));
        assert!(res.backoff_seconds > 0.0);
        assert!(dev.stats().backoff_seconds > 0.0);
        assert_eq!(dev.memory().in_use(), 0, "retry must not leak buffers");
    }

    #[test]
    fn retry_budget_exhaustion_propagates_the_fault() {
        let input = gen::micro_input(1_000, 33);
        let plan = select_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        dev.inject_faults(FaultConfig {
            transfer_rate: 1.0, // every transfer faults, forever
            ..FaultConfig::default()
        });
        let err = execute_resilient(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(dev.memory().in_use(), 0);
    }

    #[test]
    fn tiny_device_degrades_down_the_ladder_to_chunked() {
        let input = gen::micro_input(50_000, 34);
        let plan = select_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::tiny());
        let report = execute_resilient(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.outputs.values().next().unwrap(), &oracle(&input));
        let res = report.resilience.as_ref().unwrap();
        assert!(
            matches!(res.final_mode, AdmittedMode::Chunked { .. }),
            "{:?}",
            res.final_mode
        );
        assert_eq!(dev.memory().in_use(), 0);
    }

    #[test]
    fn retried_chunked_run_keeps_wallclocks_ordered() {
        // Regression for the backoff-charging invariant: a transfer fault
        // striking the chunked rung's mirrored traffic forces a retry whose
        // backoff must land in BOTH `total_seconds` and
        // `serialized_seconds`, so the serialized (no-overlap) cost can
        // never dip below the overlap-aware wallclock.
        let input = gen::micro_input(50_000, 36);
        let plan = select_plan(input.schema().clone());
        let mut dev = Device::new(DeviceConfig::tiny());
        dev.inject_faults(FaultConfig::scripted(vec![ScriptedFault {
            kind: FaultKind::Transfer,
            attempt: 0,
        }]));
        let report = execute_resilient(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.outputs.values().next().unwrap(), &oracle(&input));
        let res = report.resilience.as_ref().unwrap();
        assert!(
            matches!(res.final_mode, AdmittedMode::Chunked { .. }),
            "{:?}",
            res.final_mode
        );
        assert!(res.retries >= 1, "the scripted fault must force a retry");
        assert!(res.backoff_seconds > 0.0);
        // Both wallclocks carry the backoff...
        let pipelined = report.pipelined_seconds.unwrap();
        assert!((report.total_seconds - (pipelined + res.backoff_seconds)).abs() < 1e-12);
        assert!(report.serialized_seconds >= pipelined + res.backoff_seconds);
        // ...so their ordering survives the retry.
        assert!(
            report.serialized_seconds >= report.total_seconds,
            "serialized {} must not dip below total {}",
            report.serialized_seconds,
            report.total_seconds
        );
    }

    #[test]
    fn ladder_stops_carry_typed_reasons() {
        let input = gen::micro_input(16, 37);
        let elementwise = select_plan(input.schema().clone());
        assert_eq!(
            next_rung(AdmittedMode::Resident, &elementwise),
            Ok(AdmittedMode::Staged)
        );
        assert_eq!(
            next_rung(AdmittedMode::Staged, &elementwise),
            Ok(AdmittedMode::Chunked { chunks: 2 })
        );
        assert_eq!(
            next_rung(AdmittedMode::Chunked { chunks: MAX_CHUNKS }, &elementwise),
            Err(LadderStop::MaxChunksExceeded)
        );

        // A join is no longer a ladder stop: hash partitioning gives it a
        // chunked rung.
        let (l, r) = gen::join_inputs(16, 2, 0.5, 38);
        let mut joiny = QueryPlan::new();
        let x = joiny.add_input("x", l.schema().clone());
        let y = joiny.add_input("y", r.schema().clone());
        let j = joiny.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        joiny.mark_output(j);
        assert_eq!(
            next_rung(AdmittedMode::Staged, &joiny),
            Ok(AdmittedMode::Chunked { chunks: 2 })
        );

        // A full sort genuinely cannot chunk: the typed stop remains.
        let mut sorty = QueryPlan::new();
        let t = sorty.add_input("t", input.schema().clone());
        let s = sorty.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        sorty.mark_output(s);
        assert_eq!(
            next_rung(AdmittedMode::Staged, &sorty),
            Err(LadderStop::NonElementwiseBlocksChunking)
        );
    }

    #[test]
    fn non_partitionable_plan_on_hopeless_device_fails_typed() {
        // A full sort has no chunk strategy, so a device below its staged
        // footprint rejects it at admission with the no-strategy detail.
        let input = gen::micro_input(200_000, 35);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan.add_op(RaOp::Sort { attrs: vec![1] }, &[t]).unwrap();
        plan.mark_output(s);
        let mut dev = Device::new(DeviceConfig::tiny());
        let err = execute_resilient(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, WeaverError::Admission { .. }), "{err}");
        assert!(err.to_string().contains("no chunk strategy"), "{err}");
    }

    #[test]
    fn oversized_join_degrades_to_hash_partitioned_chunks() {
        // A join whose inputs exceed the device now completes through the
        // ladder via hash-partitioned chunking, byte-identical to resident
        // execution on an oversized device.
        let (l, r) = gen::join_inputs(60_000, 2, 0.5, 39);
        let mut plan = QueryPlan::new();
        let x = plan.add_input("x", l.schema().clone());
        let y = plan.add_input("y", r.schema().clone());
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
        plan.mark_output(j);
        let oracle = kw_relational::ops::join(&l, &r, 1).unwrap();

        let mut dev = Device::new(DeviceConfig::tiny());
        let report = execute_resilient(
            &plan,
            &[("x", &l), ("y", &r)],
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.outputs[&j], oracle);
        let res = report.resilience.as_ref().unwrap();
        assert!(
            matches!(res.final_mode, AdmittedMode::Chunked { .. }),
            "{:?}",
            res.final_mode
        );
        assert_eq!(
            res.admission.strategy,
            Some(crate::ChunkStrategy::HashPartition)
        );
        assert_eq!(dev.memory().in_use(), 0);
    }
}
