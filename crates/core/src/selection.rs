//! Algorithm 2: choosing which candidates to fuse under resource
//! constraints.
//!
//! The paper's heuristic: walk the candidate group in topological order,
//! greedily growing the current fusion set as long as the fused kernel's
//! estimated registers/thread and shared memory/CTA stay within budget —
//! "it is more important to fuse operators executed earlier than those
//! executed later", because data volumes shrink as filters apply. When a
//! candidate does not fit, the current set is closed and a new one starts.

use kw_gpu_sim::DeviceConfig;
use kw_kernel_ir::{estimate_resources, infer_schemas, OptLevel};

use crate::{weave, NodeId, QueryPlan, Result};

/// Per-kernel resource budget Algorithm 2 enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum registers per thread.
    pub max_registers_per_thread: u32,
    /// Maximum shared memory per CTA, bytes.
    pub max_shared_per_cta: u32,
}

impl ResourceBudget {
    /// The budget implied by a device configuration: the architectural
    /// register limit and the full shared memory of one SM.
    pub fn from_device(cfg: &DeviceConfig) -> ResourceBudget {
        ResourceBudget {
            max_registers_per_thread: cfg.max_registers_per_thread,
            max_shared_per_cta: cfg.shared_mem_per_sm,
        }
    }

    /// Whether `res` fits the budget.
    pub fn admits(&self, res: kw_gpu_sim::KernelResources) -> bool {
        res.registers_per_thread <= self.max_registers_per_thread
            && res.shared_per_cta <= self.max_shared_per_cta
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::from_device(&DeviceConfig::fermi_c2050())
    }
}

/// Split one candidate group into fusion sets under `budget`.
///
/// Sets of size one are returned too (the caller executes them unfused).
/// Within a set, a node is only admitted if all its in-group producers are
/// in the *current* set — an intermediate that already left the kernel
/// cannot be re-fused.
///
/// # Errors
///
/// Propagates codegen errors other than budget refusals.
pub fn select_fusions(
    plan: &QueryPlan,
    group: &[NodeId],
    budget: ResourceBudget,
    threads_per_cta: u32,
) -> Result<Vec<Vec<NodeId>>> {
    let mut sets: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();

    for &n in group {
        if current.is_empty() {
            current.push(n);
            continue;
        }
        // All in-group producers of `n` must be in the current set.
        let producers_ok = plan
            .producers(n)
            .iter()
            .filter(|p| group.contains(p))
            .all(|p| current.contains(p));

        let mut attempt = current.clone();
        attempt.push(n);
        let fits = producers_ok && fused_fits(plan, &attempt, budget, threads_per_cta);
        if fits {
            current = attempt;
        } else {
            sets.push(std::mem::take(&mut current));
            current.push(n);
        }
    }
    if !current.is_empty() {
        sets.push(current);
    }
    Ok(sets)
}

/// Whether the woven fusion of `set` fits `budget` (a set that fails to
/// weave at all — e.g. disconnected after splitting — also does not fit).
fn fused_fits(
    plan: &QueryPlan,
    set: &[NodeId],
    budget: ResourceBudget,
    threads_per_cta: u32,
) -> bool {
    // Scheduling acyclicity: no external input of the fused kernel may
    // transitively depend on a member of the set (that happens when a
    // kernel-dependent operator sits on a path *between* two candidates —
    // e.g. `u → aggregate → j` with `u` and `j` both fusible).
    let external: Vec<NodeId> = set
        .iter()
        .flat_map(|&n| plan.producers(n).iter().copied())
        .filter(|p| !set.contains(p))
        .collect();
    if external.iter().any(|&p| depends_on_any(plan, p, set)) {
        return false;
    }

    let Ok(woven) = weave(plan, set, threads_per_cta) else {
        return false;
    };
    let Ok(inferred) = infer_schemas(&woven.op) else {
        return false;
    };
    let Ok(res) = estimate_resources(&woven.op, &inferred, OptLevel::O3) else {
        return false;
    };
    budget.admits(res)
}

/// Whether `node` transitively depends on any node in `targets`.
fn depends_on_any(plan: &QueryPlan, node: NodeId, targets: &[NodeId]) -> bool {
    let mut stack = vec![node];
    let mut seen = vec![false; plan.len()];
    while let Some(n) = stack.pop() {
        if seen[n.0] {
            continue;
        }
        seen[n.0] = true;
        for &p in plan.producers(n) {
            if targets.contains(&p) {
                return true;
            }
            stack.push(p);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_candidates, FusionOptions};
    use kw_kernel_ir::DEFAULT_THREADS_PER_CTA;
    use kw_primitives::RaOp;
    use kw_relational::{CmpOp, Predicate, Schema, Value};

    fn sel(attr: usize) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(9)),
        }
    }

    #[test]
    fn small_chain_fuses_entirely() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let b = p.add_op(sel(1), &[a]).unwrap();
        let c = p.add_op(sel(2), &[b]).unwrap();
        p.mark_output(c);
        let groups = find_candidates(&p, FusionOptions::default());
        let sets = select_fusions(
            &p,
            &groups[0],
            ResourceBudget::default(),
            DEFAULT_THREADS_PER_CTA,
        )
        .unwrap();
        assert_eq!(sets, vec![vec![a, b, c]]);
    }

    #[test]
    fn tight_shared_budget_splits_join_chain() {
        let mut p = QueryPlan::new();
        let s = Schema::uniform_u32(2);
        let t0 = p.add_input("t0", s.clone());
        let t1 = p.add_input("t1", s.clone());
        let t2 = p.add_input("t2", s.clone());
        let j1 = p.add_op(RaOp::Join { key_len: 1 }, &[t0, t1]).unwrap();
        let j2 = p.add_op(RaOp::Join { key_len: 1 }, &[j1, t2]).unwrap();
        p.mark_output(j2);
        let groups = find_candidates(&p, FusionOptions::default());
        assert_eq!(groups.len(), 1);

        // Generous budget: both joins fuse.
        let sets = select_fusions(
            &p,
            &groups[0],
            ResourceBudget::default(),
            DEFAULT_THREADS_PER_CTA,
        )
        .unwrap();
        assert_eq!(sets, vec![vec![j1, j2]]);

        // Starved shared budget: the chain splits into singletons.
        let tight = ResourceBudget {
            max_registers_per_thread: 63,
            max_shared_per_cta: 8 * 1024,
        };
        let sets = select_fusions(&p, &groups[0], tight, DEFAULT_THREADS_PER_CTA).unwrap();
        assert_eq!(sets, vec![vec![j1], vec![j2]]);
    }

    #[test]
    fn earlier_operators_get_priority() {
        // Six parallel selects over one input (pattern (d) at scale): every
        // fused result stays live until the stores, so registers accumulate
        // and a tight budget must split the group — keeping the earliest
        // operators fused together, per the paper's heuristic.
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let mut nodes = Vec::new();
        for i in 0..6 {
            let n = p.add_op(sel(i % 4), &[t]).unwrap();
            p.mark_output(n);
            nodes.push(n);
        }
        let groups = find_candidates(&p, FusionOptions::default());
        assert_eq!(groups.len(), 1);
        let tight = ResourceBudget {
            max_registers_per_thread: 30,
            max_shared_per_cta: 48 * 1024,
        };
        let sets = select_fusions(&p, &groups[0], tight, DEFAULT_THREADS_PER_CTA).unwrap();
        assert!(sets.len() > 1, "budget should split the group: {sets:?}");
        assert_eq!(sets.concat(), nodes, "topological order preserved");
        assert!(
            sets[0].len() >= 2,
            "earliest operators should fuse first: {sets:?}"
        );
    }

    #[test]
    fn fusion_never_spans_a_kernel_dependent_bridge() {
        // u -> aggregate -> j with u and j both weavable: fusing {u, j}
        // would make the fused kernel depend on the aggregate, which
        // depends on the fused kernel — a scheduling cycle. Algorithm 2
        // must refuse it (the regression behind TPC-H Q21's count-distinct
        // rewrite).
        use kw_relational::ops::AggFn;
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let u = p.add_op(RaOp::Unique, &[t]).unwrap();
        let agg = p
            .add_op(
                RaOp::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggFn::Count],
                },
                &[u],
            )
            .unwrap();
        let agg_sel = p
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Ge, Value::U64(2)),
                },
                &[agg],
            )
            .unwrap();
        let j = p
            .add_op(RaOp::SemiJoin { key_len: 1 }, &[u, agg_sel])
            .unwrap();
        p.mark_output(j);

        let groups = find_candidates(&p, FusionOptions::default());
        for g in &groups {
            let sets =
                select_fusions(&p, g, ResourceBudget::default(), DEFAULT_THREADS_PER_CTA).unwrap();
            for set in sets {
                assert!(
                    !(set.contains(&u) && set.contains(&j)),
                    "u and j must not fuse across the aggregate: {set:?}"
                );
            }
        }
        // And the whole plan compiles + schedules.
        let compiled = crate::compile(&p, &crate::WeaverConfig::default()).unwrap();
        assert!(!compiled.steps.is_empty());
    }

    #[test]
    fn budget_admits() {
        let b = ResourceBudget {
            max_registers_per_thread: 32,
            max_shared_per_cta: 1024,
        };
        assert!(b.admits(kw_gpu_sim::KernelResources {
            registers_per_thread: 32,
            shared_per_cta: 1024
        }));
        assert!(!b.admits(kw_gpu_sim::KernelResources {
            registers_per_thread: 33,
            shared_per_cta: 0
        }));
    }
}
