//! Query plan graphs: the RA dependence graph of Figure 9.
//!
//! A [`QueryPlan`] is a DAG whose nodes are either named base-relation
//! inputs or [`RaOp`] operators; edges are producer→consumer dependences.
//! The language front-end (`kw-datalog`) produces these graphs and Kernel
//! Weaver compiles them.

use kw_primitives::RaOp;
use kw_relational::Schema;

use crate::{Result, WeaverError};

/// Identifier of a plan node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of a query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// A named base relation supplied at execution time.
    Input {
        /// Binding name (e.g. `lineitem`).
        name: String,
        /// Schema the bound relation must have.
        schema: Schema,
    },
    /// An operator over earlier nodes.
    Operator {
        /// The RA operator.
        op: RaOp,
        /// Producer nodes, in input order.
        inputs: Vec<NodeId>,
    },
}

/// A query plan DAG.
///
/// # Examples
///
/// ```
/// use kw_core::QueryPlan;
/// use kw_primitives::RaOp;
/// use kw_relational::{CmpOp, Predicate, Schema, Value};
///
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", Schema::uniform_u32(4));
/// let s1 = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(100)) },
///     &[t],
/// )?;
/// let s2 = plan.add_op(
///     RaOp::Select { pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(100)) },
///     &[s1],
/// )?;
/// plan.mark_output(s2);
/// assert_eq!(plan.operator_nodes().count(), 2);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryPlan {
    nodes: Vec<PlanNode>,
    schemas: Vec<Schema>,
    outputs: Vec<NodeId>,
}

impl QueryPlan {
    /// Create an empty plan.
    pub fn new() -> QueryPlan {
        QueryPlan::default()
    }

    /// Add a named base-relation input.
    pub fn add_input(&mut self, name: impl Into<String>, schema: Schema) -> NodeId {
        self.nodes.push(PlanNode::Input {
            name: name.into(),
            schema: schema.clone(),
        });
        self.schemas.push(schema);
        NodeId(self.nodes.len() - 1)
    }

    /// Add an operator node consuming `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`WeaverError::Plan`] for bad node references and
    /// [`WeaverError::Relational`] when the operator does not type-check
    /// against its input schemas.
    pub fn add_op(&mut self, op: RaOp, inputs: &[NodeId]) -> Result<NodeId> {
        for &i in inputs {
            if i.0 >= self.nodes.len() {
                return Err(WeaverError::plan(format!("operator references {i}")));
            }
        }
        let in_schemas: Vec<&Schema> = inputs.iter().map(|&i| &self.schemas[i.0]).collect();
        let out = op.output_schema(&in_schemas)?;
        self.nodes.push(PlanNode::Operator {
            op,
            inputs: inputs.to_vec(),
        });
        self.schemas.push(out);
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Mark a node as a plan output (its relation is returned to the host).
    pub fn mark_output(&mut self, node: NodeId) {
        if !self.outputs.contains(&node) {
            self.outputs.push(node);
        }
    }

    /// The plan output nodes.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.0]
    }

    /// The schema of node `id`'s result.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn schema(&self, id: NodeId) -> &Schema {
        &self.schemas[id.0]
    }

    /// Iterate over all node ids in insertion (topological) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterate over operator nodes as `(id, op, inputs)`.
    pub fn operator_nodes(&self) -> impl Iterator<Item = (NodeId, &RaOp, &[NodeId])> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            PlanNode::Operator { op, inputs } => Some((NodeId(i), op, inputs.as_slice())),
            PlanNode::Input { .. } => None,
        })
    }

    /// The producer nodes of `id` (empty for inputs).
    pub fn producers(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.0] {
            PlanNode::Input { .. } => &[],
            PlanNode::Operator { inputs, .. } => inputs,
        }
    }

    /// The consumer nodes of `id`.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&c| self.producers(c).contains(&id))
            .collect()
    }

    /// Whether node `id`'s result leaves the plan (is a marked output).
    pub fn is_output(&self, id: NodeId) -> bool {
        self.outputs.contains(&id)
    }

    /// Validate plan-level invariants: every output exists, every operator's
    /// producers precede it (acyclicity is structural: nodes only reference
    /// earlier nodes), and at least one output is marked.
    ///
    /// # Errors
    ///
    /// Returns [`WeaverError::Plan`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        if self.outputs.is_empty() {
            return Err(WeaverError::plan("plan has no marked outputs"));
        }
        for &o in &self.outputs {
            if o.0 >= self.nodes.len() {
                return Err(WeaverError::plan(format!("output {o} does not exist")));
            }
        }
        for id in self.node_ids() {
            for &p in self.producers(id) {
                if p.0 >= id.0 {
                    return Err(WeaverError::plan(format!(
                        "node {id} consumes later node {p}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Render the plan for diagnostics.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for id in self.node_ids() {
            match self.node(id) {
                PlanNode::Input { name, schema } => {
                    let _ = writeln!(s, "{id}: input {name} {schema}");
                }
                PlanNode::Operator { op, inputs } => {
                    let _ = write!(s, "{id}: {op} <-");
                    for i in inputs {
                        let _ = write!(s, " {i}");
                    }
                    let out = if self.is_output(id) { "  [output]" } else { "" };
                    let _ = writeln!(s, "{out}");
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::{CmpOp, Predicate, Value};

    fn select(threshold: u32) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(threshold)),
        }
    }

    #[test]
    fn build_and_introspect() {
        let mut p = QueryPlan::new();
        let a = p.add_input("a", Schema::uniform_u32(2));
        let b = p.add_input("b", Schema::uniform_u32(2));
        let j = p.add_op(RaOp::Join { key_len: 1 }, &[a, b]).unwrap();
        let s = p.add_op(select(5), &[j]).unwrap();
        p.mark_output(s);

        assert_eq!(p.schema(j).arity(), 3);
        assert_eq!(p.consumers(j), vec![s]);
        assert_eq!(p.producers(j), &[a, b]);
        assert!(p.validate().is_ok());
        assert!(p.describe().contains("JOIN"));
    }

    #[test]
    fn type_errors_rejected() {
        let mut p = QueryPlan::new();
        let a = p.add_input("a", Schema::uniform_u32(2));
        let b = p.add_input("b", Schema::uniform_u32(3));
        assert!(p.add_op(RaOp::Union, &[a, b]).is_err());
    }

    #[test]
    fn missing_output_detected() {
        let mut p = QueryPlan::new();
        let a = p.add_input("a", Schema::uniform_u32(2));
        let _ = p.add_op(select(1), &[a]).unwrap();
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_node_reference_rejected() {
        let mut p = QueryPlan::new();
        assert!(p.add_op(select(1), &[NodeId(7)]).is_err());
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut p = QueryPlan::new();
        let a = p.add_input("a", Schema::uniform_u32(2));
        let s = p.add_op(select(1), &[a]).unwrap();
        p.mark_output(s);
        p.mark_output(s);
        assert_eq!(p.outputs().len(), 1);
    }
}
