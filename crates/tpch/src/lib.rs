//! Synthetic TPC-H workloads for the Kernel Weaver reproduction.
//!
//! Provides the paper's evaluation workloads:
//!
//! * [`Pattern`] — the five micro-benchmark operator patterns of Figure 14,
//!   mined from the 22 TPC-H queries;
//! * [`q1`] / [`q21`] — the two full queries of Section 5.2 (arithmetic-
//!   centric and relational-centric respectively), plus [`q3`] / [`q6`]
//!   supporting the paper's "all 22 queries" generalization;
//! * [`generate`] — a scale-factor synthetic generator for the TPC-H tables
//!   the queries touch (numeric encodings; see `DESIGN.md` for the
//!   substitution rationale).
//!
//! # Examples
//!
//! ```
//! use kw_core::WeaverConfig;
//! use kw_gpu_sim::{Device, DeviceConfig};
//! use kw_tpch::Pattern;
//!
//! let workload = Pattern::A.build(10_000, 42);
//! let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
//! let fused = workload.run(&mut fused_dev, &WeaverConfig::default())?;
//! let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
//! let base = workload.run(&mut base_dev, &WeaverConfig::default().baseline())?;
//! assert!(base.gpu_seconds > fused.gpu_seconds);
//! # Ok::<(), kw_core::WeaverError>(())
//! ```

#![warn(missing_docs)]

mod gen;
mod more_queries;
mod patterns;
mod queries;
pub mod schema;

use kw_core::{execute_plan, PlanReport, QueryPlan, WeaverConfig};
use kw_gpu_sim::Device;
use kw_relational::Relation;

pub use gen::{generate, TpchDb, DATE_MAX, DATE_MIN, Q1_SHIPDATE_THRESHOLD};
pub use more_queries::{q3, q3_plan, q6, q6_plan, Q3_DATE, Q6_DATE_START};
pub use patterns::{pattern_a, pattern_b, pattern_c, pattern_d, pattern_e, Pattern};
pub use queries::{q1, q1_plan, q21, q21_plan, Q21_NATION};
pub use schema::STATUS_F;

/// A ready-to-run workload: a query plan plus the relations it binds.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// The query plan.
    pub plan: QueryPlan,
    /// Named input relations.
    pub data: Vec<(String, Relation)>,
}

impl Workload {
    /// Bundle a plan with its data.
    pub fn new(
        name: impl Into<String>,
        plan: QueryPlan,
        data: Vec<(String, Relation)>,
    ) -> Workload {
        Workload {
            name: name.into(),
            plan,
            data,
        }
    }

    /// Borrowed bindings for [`execute_plan`].
    pub fn bindings(&self) -> Vec<(&str, &Relation)> {
        self.data.iter().map(|(n, r)| (n.as_str(), r)).collect()
    }

    /// Total bytes of the input relations.
    pub fn input_bytes(&self) -> u64 {
        self.data.iter().map(|(_, r)| r.byte_size() as u64).sum()
    }

    /// Compile and run the workload on `device` under `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`kw_core::WeaverError`] from compilation or execution.
    pub fn run(&self, device: &mut Device, config: &WeaverConfig) -> kw_core::Result<PlanReport> {
        execute_plan(&self.plan, &self.bindings(), device, config)
    }
}
