//! The two TPC-H queries the paper evaluates (Section 5.2).
//!
//! As in the paper, the query plans are built by hand (the authors note
//! their Datalog front-end did not yet compile all of TPC-H). **Q1** is the
//! arithmetic-centric query: a shipdate filter, per-tuple revenue
//! arithmetic, then a grouped aggregation whose internal sort dominates the
//! runtime. **Q21** is the relational-centric query: a pipeline of joins
//! bounded by SORT re-keying operators.

use kw_primitives::RaOp;
use kw_relational::ops::AggFn;
use kw_relational::{CmpOp, Expr, Predicate, Value};

use crate::schema::{lineitem as l, orders as o};
use crate::{generate, TpchDb, Workload, Q1_SHIPDATE_THRESHOLD, STATUS_F};

/// Build TPC-H Q1 ("pricing summary report") over a generated database.
///
/// ```sql
/// SELECT returnflag, linestatus, SUM(qty), SUM(price), SUM(disc_price),
///        SUM(charge), AVG(qty), AVG(price), AVG(discount), COUNT(*)
/// FROM lineitem WHERE shipdate <= :threshold
/// GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus
/// ```
///
/// The SELECT and the two arithmetic MAPs are fusible (thread dependence);
/// the grouped AGGREGATE is kernel-dependent and its internal sort is the
/// "71% of execution time" the paper cannot optimize.
pub fn q1(scale: f64, seed: u64) -> Workload {
    let db = generate(scale, seed);
    q1_plan(db)
}

/// Q1 over an existing database.
///
/// The plan is decomposed into fine-grained operators the way the paper's
/// front-end emitted it (their Q1 had 15 operators): a date filter, a
/// projection, and a chain of single-expression arithmetic MAPs, all of
/// which fuse — followed by the unfusible grouped aggregation.
pub fn q1_plan(db: TpchDb) -> Workload {
    let mut plan = kw_core::QueryPlan::new();
    let li = plan.add_input("lineitem", db.lineitem.schema().clone());

    // WHERE shipdate <= threshold (keeps ~96% of rows, as in TPC-H).
    let filtered = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(l::SHIPDATE, CmpOp::Le, Value::U32(Q1_SHIPDATE_THRESHOLD)),
            },
            &[li],
        )
        .expect("q1 select");

    // Discard the attributes the aggregation does not need; layout:
    // (returnflag, linestatus, qty, price, discount, tax)
    let trimmed = plan
        .add_op(
            RaOp::Project {
                attrs: vec![
                    l::RETURNFLAG,
                    l::LINESTATUS,
                    l::QUANTITY,
                    l::EXTENDEDPRICE,
                    l::DISCOUNT,
                    l::TAX,
                ],
                key_arity: 0,
            },
            &[filtered],
        )
        .expect("q1 project");

    // one_minus_disc = 1 - discount; appended:
    // (rf, ls, qty, price, discount, tax, 1-disc)
    let keep = |n: usize| -> Vec<Expr> { (0..n).map(Expr::attr).collect() };
    let m1 = plan
        .add_op(
            RaOp::Map {
                exprs: {
                    let mut e = keep(6);
                    e.push(Expr::lit(1.0f32).sub(Expr::attr(4)));
                    e
                },
                key_arity: 0,
            },
            &[trimmed],
        )
        .expect("q1 map 1");

    // disc_price = price * (1 - discount); appended:
    // (rf, ls, qty, price, discount, tax, 1-disc, disc_price)
    let m2 = plan
        .add_op(
            RaOp::Map {
                exprs: {
                    let mut e = keep(7);
                    e.push(Expr::attr(3).mul(Expr::attr(6)));
                    e
                },
                key_arity: 0,
            },
            &[m1],
        )
        .expect("q1 map 2");

    // charge = disc_price * (1 + tax); final aggregation layout:
    // (rf, ls, qty, price, discount, disc_price, charge)
    let m2 = plan
        .add_op(
            RaOp::Map {
                exprs: vec![
                    Expr::attr(0),
                    Expr::attr(1),
                    Expr::attr(2),
                    Expr::attr(3),
                    Expr::attr(4),
                    Expr::attr(7),
                    Expr::attr(7).mul(Expr::lit(1.0f32).add(Expr::attr(5))),
                ],
                key_arity: 0,
            },
            &[m2],
        )
        .expect("q1 map 3");

    // GROUP BY returnflag, linestatus (sorts internally — the paper's
    // dominant, unfusible SORT) with the eight Q1 aggregates.
    let agg = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![0, 1],
                aggs: vec![
                    AggFn::Sum(2), // sum_qty
                    AggFn::Sum(3), // sum_base_price
                    AggFn::Sum(5), // sum_disc_price
                    AggFn::Sum(6), // sum_charge
                    AggFn::Avg(2), // avg_qty
                    AggFn::Avg(3), // avg_price
                    AggFn::Avg(4), // avg_disc
                    AggFn::Count,  // count_order
                ],
            },
            &[m2],
        )
        .expect("q1 aggregate");
    plan.mark_output(agg);

    Workload::new("TPC-H Q1", plan, vec![("lineitem".into(), db.lineitem)])
}

/// The nation selected by Q21's `WHERE n_name = ':1'` (a fixed nation key).
pub const Q21_NATION: u32 = 7;

/// Build TPC-H Q21 ("suppliers who kept orders waiting") over a generated
/// database.
///
/// The plan follows the paper's description: a pipeline built on JOINs —
/// late lineitems ⋈ F-orders ⋈ all-lineitems (the "another supplier on the
/// same order" check) — then SORT boundaries re-keying to supplier and
/// nation before the supplier/nation joins and the final per-supplier
/// count.
pub fn q21(scale: f64, seed: u64) -> Workload {
    let db = generate(scale, seed);
    q21_plan(db)
}

/// Q21 over an existing database.
pub fn q21_plan(db: TpchDb) -> Workload {
    let mut plan = kw_core::QueryPlan::new();
    let li = plan.add_input("lineitem", db.lineitem.schema().clone());
    let or = plan.add_input("orders", db.orders.schema().clone());
    let su = plan.add_input("supplier", db.supplier.schema().clone());
    let na = plan.add_input("nation", db.nation.schema().clone());

    // l1: late lineitems (receiptdate > commitdate), trimmed to (ok, sk).
    let late = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp_attr(l::RECEIPTDATE, CmpOp::Gt, l::COMMITDATE),
            },
            &[li],
        )
        .expect("q21 late select");
    let late_p = plan
        .add_op(
            RaOp::Project {
                attrs: vec![l::ORDERKEY, l::SUPPKEY],
                key_arity: 1,
            },
            &[late],
        )
        .expect("q21 late project");

    // Orders with status 'F'.
    let forders = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(o::ORDERSTATUS, CmpOp::Eq, Value::U32(STATUS_F)),
            },
            &[or],
        )
        .expect("q21 orders select");

    // EXISTS l2 (another supplier on the same order) and NOT EXISTS l3 (no
    // *other* supplier was late) via the count-distinct rewrite:
    // n_supp(ok) >= 2 and n_late(ok) == 1 — when exactly one distinct
    // supplier was late on a multi-supplier order, the late rows are that
    // supplier's.
    let all_p = plan
        .add_op(
            RaOp::Project {
                attrs: vec![l::ORDERKEY, l::SUPPKEY],
                key_arity: 1,
            },
            &[li],
        )
        .expect("q21 all project");
    let u_all = plan.add_op(RaOp::Unique, &[all_p]).expect("q21 unique all");
    let n_supp = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggFn::Count],
            },
            &[u_all],
        )
        .expect("q21 supplier count");
    let u_late = plan
        .add_op(RaOp::Unique, &[late_p])
        .expect("q21 unique late");
    let n_late = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggFn::Count],
            },
            &[u_late],
        )
        .expect("q21 late count");

    // (ok, n_supp, n_late) with the Q21 conditions applied.
    let counts = plan
        .add_op(RaOp::Join { key_len: 1 }, &[n_supp, n_late])
        .expect("q21 counts join");
    let qualifying = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Ge, Value::U64(2)).and(Predicate::cmp(
                    2,
                    CmpOp::Eq,
                    Value::U64(1),
                )),
            },
            &[counts],
        )
        .expect("q21 qualifying select");

    // ... restricted to F-orders -> (ok, n_supp, n_late, status, custkey).
    let good_orders = plan
        .add_op(RaOp::Join { key_len: 1 }, &[qualifying, forders])
        .expect("q21 order join");

    // The waiting rows: distinct late (ok, sk) pairs of qualifying orders
    // (EXISTS/NOT EXISTS as a semi-join).
    let waiting = plan
        .add_op(RaOp::SemiJoin { key_len: 1 }, &[u_late, good_orders])
        .expect("q21 semi-join");

    // SORT boundary: re-key to suppkey -> (sk, ok).
    let by_supp = plan
        .add_op(RaOp::Sort { attrs: vec![1] }, &[waiting])
        .expect("q21 sort by suppkey");

    // j3 = ⋈ supplier on suppkey -> (sk, ok, nationkey).
    let j3 = plan
        .add_op(RaOp::Join { key_len: 1 }, &[by_supp, su])
        .expect("q21 join 3");

    // SORT boundary: re-key to nationkey (position 2).
    let by_nation = plan
        .add_op(RaOp::Sort { attrs: vec![2] }, &[j3])
        .expect("q21 sort by nationkey");

    // j4 = ⋈ nation on nationkey, then filter to the target nation.
    let j4 = plan
        .add_op(RaOp::Join { key_len: 1 }, &[by_nation, na])
        .expect("q21 join 4");
    let one_nation = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(0, CmpOp::Eq, Value::U32(Q21_NATION)),
            },
            &[j4],
        )
        .expect("q21 nation select");

    // Count waiting orders per supplier: group by suppkey (position 1 after
    // the nation join layout (nk, sk, ok, status, ck, sk2, regionkey)).
    let counted = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![1],
                aggs: vec![AggFn::Count],
            },
            &[one_nation],
        )
        .expect("q21 aggregate");
    plan.mark_output(counted);

    Workload::new(
        "TPC-H Q21",
        plan,
        vec![
            ("lineitem".into(), db.lineitem),
            ("orders".into(), db.orders),
            ("supplier".into(), db.supplier),
            ("nation".into(), db.nation),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::WeaverConfig;
    use kw_gpu_sim::{cycles_for_label, Device, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    #[test]
    fn q1_runs_and_produces_groups() {
        let w = q1(1.0, 1);
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let out = r.outputs.values().next().unwrap();
        // 3 returnflags x 2 linestatuses = up to 6 groups.
        assert!(out.len() >= 4 && out.len() <= 6, "{} groups", out.len());
        assert_eq!(out.schema().arity(), 10);
    }

    #[test]
    fn q1_fused_equals_baseline() {
        let w = q1(1.0, 2);
        let mut d1 = device();
        let fused = w.run(&mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = w.run(&mut d2, &WeaverConfig::default().baseline()).unwrap();
        assert_eq!(fused.outputs, base.outputs);
        assert!(base.gpu_seconds > fused.gpu_seconds);
    }

    #[test]
    fn q1_sort_dominates_baseline() {
        let w = q1(4.0, 3);
        let mut d = device();
        let _ = w.run(&mut d, &WeaverConfig::default().baseline()).unwrap();
        let sort_cycles = cycles_for_label(d.timeline(), "sort");
        let total: u64 = d.stats().gpu_cycles;
        let frac = sort_cycles as f64 / total as f64;
        assert!(
            frac > 0.5,
            "sort should dominate Q1 (paper: ~71%), got {:.0}%",
            frac * 100.0
        );
    }

    #[test]
    fn q21_runs_and_counts_waiting_suppliers() {
        let w = q21(1.0, 4);
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let out = r.outputs.values().next().unwrap();
        assert!(!out.is_empty());
        assert_eq!(out.schema().arity(), 2); // (suppkey, count)
    }

    #[test]
    fn q21_fused_equals_baseline_and_wins() {
        let w = q21(2.0, 5);
        let mut d1 = device();
        let fused = w.run(&mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = w.run(&mut d2, &WeaverConfig::default().baseline()).unwrap();
        assert_eq!(fused.outputs, base.outputs);
        assert!(base.gpu_seconds > fused.gpu_seconds);
        assert!(!fused.fusion_sets.is_empty());
    }

    #[test]
    fn q21_matches_brute_force_not_exists() {
        use std::collections::{BTreeMap, BTreeSet};
        let db = crate::generate(1.0, 77);
        let w = q21_plan(db.clone());
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let got: BTreeMap<u64, u64> = r
            .outputs
            .values()
            .next()
            .unwrap()
            .iter()
            .map(|t| (t[0], t[1]))
            .collect();

        // Brute force: for each late lineitem (l1) of an F-order whose
        // supplier is in the target nation, require EXISTS another supplier
        // on the order and NOT EXISTS another *late* supplier.
        let li = &db.lineitem;
        let late = |i: usize| li.tuple(i)[10] > li.tuple(i)[9];
        let f_orders: BTreeSet<u64> = db
            .orders
            .iter()
            .filter(|t| t[1] == u64::from(crate::STATUS_F))
            .map(|t| t[0])
            .collect();
        let nation_of: BTreeMap<u64, u64> = db.supplier.iter().map(|t| (t[0], t[1])).collect();
        let mut suppliers_by_order: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        let mut late_by_order: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for i in 0..li.len() {
            let t = li.tuple(i);
            suppliers_by_order.entry(t[0]).or_default().insert(t[1]);
            if late(i) {
                late_by_order.entry(t[0]).or_default().insert(t[1]);
            }
        }
        let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
        for (ok, late_supps) in &late_by_order {
            if !f_orders.contains(ok) {
                continue;
            }
            let all = &suppliers_by_order[ok];
            if all.len() < 2 || late_supps.len() != 1 {
                continue;
            }
            let sk = *late_supps.iter().next().unwrap();
            if nation_of.get(&sk) == Some(&u64::from(Q21_NATION)) {
                *expected.entry(sk).or_insert(0) += 1;
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn q21_has_sort_boundaries() {
        let w = q21(1.0, 6);
        let compiled = kw_core::compile(&w.plan, &WeaverConfig::default()).unwrap();
        // The two SORT re-keys and the aggregate bound the fusion regions:
        // no fusion set may span them.
        let sorts = w
            .plan
            .operator_nodes()
            .filter(|(_, op, _)| matches!(op, RaOp::Sort { .. }))
            .count();
        assert_eq!(sorts, 2);
        assert!(compiled.fusion_sets.len() >= 2);
    }
}
