//! Numeric schemas for the TPC-H tables used by the paper's evaluation.
//!
//! The experiments depend on cardinalities, key distributions and
//! selectivities — not on dbgen's string columns — so every attribute is
//! encoded numerically (dates as day numbers, flags as small integers).

use kw_relational::{AttrType, Schema};

/// Column indices of the `lineitem` table.
pub mod lineitem {
    /// Order key (the sort key).
    pub const ORDERKEY: usize = 0;
    /// Supplier key.
    pub const SUPPKEY: usize = 1;
    /// Quantity.
    pub const QUANTITY: usize = 2;
    /// Extended price.
    pub const EXTENDEDPRICE: usize = 3;
    /// Discount fraction.
    pub const DISCOUNT: usize = 4;
    /// Tax fraction.
    pub const TAX: usize = 5;
    /// Return flag (0..3).
    pub const RETURNFLAG: usize = 6;
    /// Line status (0..2).
    pub const LINESTATUS: usize = 7;
    /// Ship date (day number).
    pub const SHIPDATE: usize = 8;
    /// Commit date (day number).
    pub const COMMITDATE: usize = 9;
    /// Receipt date (day number).
    pub const RECEIPTDATE: usize = 10;
}

/// Schema of `lineitem`: keyed by order key.
pub fn lineitem_schema() -> Schema {
    Schema::new(
        vec![
            AttrType::U32, // orderkey
            AttrType::U32, // suppkey
            AttrType::F32, // quantity
            AttrType::F32, // extendedprice
            AttrType::F32, // discount
            AttrType::F32, // tax
            AttrType::U32, // returnflag
            AttrType::U32, // linestatus
            AttrType::U32, // shipdate
            AttrType::U32, // commitdate
            AttrType::U32, // receiptdate
        ],
        1,
    )
}

/// Column indices of the `orders` table.
pub mod orders {
    /// Order key.
    pub const ORDERKEY: usize = 0;
    /// Order status (0 = F, 1 = O, 2 = P).
    pub const ORDERSTATUS: usize = 1;
    /// Customer key.
    pub const CUSTKEY: usize = 2;
    /// Order date (day number).
    pub const ORDERDATE: usize = 3;
}

/// Schema of `orders`: keyed by order key.
pub fn orders_schema() -> Schema {
    Schema::new(
        vec![AttrType::U32, AttrType::U32, AttrType::U32, AttrType::U32],
        1,
    )
}

/// Column indices of the `customer` table.
pub mod customer {
    /// Customer key.
    pub const CUSTKEY: usize = 0;
    /// Market segment (0..5; 0 = BUILDING).
    pub const MKTSEGMENT: usize = 1;
    /// Nation key.
    pub const NATIONKEY: usize = 2;
}

/// Schema of `customer`: keyed by customer key.
pub fn customer_schema() -> Schema {
    Schema::new(vec![AttrType::U32, AttrType::U32, AttrType::U32], 1)
}

/// Number of market segments (as in TPC-H).
pub const SEGMENT_COUNT: u32 = 5;
/// The segment Q3 filters on ('BUILDING').
pub const SEGMENT_BUILDING: u32 = 0;

/// Column indices of the `supplier` table.
pub mod supplier {
    /// Supplier key.
    pub const SUPPKEY: usize = 0;
    /// Nation key.
    pub const NATIONKEY: usize = 1;
}

/// Schema of `supplier`: keyed by supplier key.
pub fn supplier_schema() -> Schema {
    Schema::new(vec![AttrType::U32, AttrType::U32], 1)
}

/// Column indices of the `nation` table.
pub mod nation {
    /// Nation key.
    pub const NATIONKEY: usize = 0;
    /// Region key.
    pub const REGIONKEY: usize = 1;
}

/// Schema of `nation`: keyed by nation key.
pub fn nation_schema() -> Schema {
    Schema::new(vec![AttrType::U32, AttrType::U32], 1)
}

/// Number of nations (as in TPC-H).
pub const NATION_COUNT: u32 = 25;

/// TPC-H orderstatus value for 'F' (all lineitems delivered).
pub const STATUS_F: u32 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shapes() {
        assert_eq!(lineitem_schema().arity(), 11);
        assert_eq!(lineitem_schema().key_arity(), 1);
        assert_eq!(orders_schema().arity(), 4);
        assert_eq!(supplier_schema().arity(), 2);
        assert_eq!(nation_schema().arity(), 2);
        assert_eq!(customer_schema().arity(), 3);
    }

    #[test]
    fn indices_match_schema_types() {
        let s = lineitem_schema();
        assert_eq!(s.attr(lineitem::QUANTITY), AttrType::F32);
        assert_eq!(s.attr(lineitem::SHIPDATE), AttrType::U32);
        assert_eq!(s.attr(lineitem::RETURNFLAG), AttrType::U32);
    }
}
