//! The paper's micro-benchmark patterns (Figure 14).
//!
//! Five frequently occurring operator combinations mined from the 22 TPC-H
//! queries:
//!
//! * **(a)** back-to-back SELECTs (+ PROJECT) — thread dependence only;
//! * **(b)** a chain of JOINs — CTA dependence;
//! * **(c)** JOINs of selected tables — mixed thread + CTA dependence;
//! * **(d)** SELECTs sharing one input — input dependence;
//! * **(e)** per-tuple arithmetic (`price * (1-discount) * (1+tax)`) —
//!   thread dependence over f32 data.
//!
//! Tuples in (a)–(d) are 16 bytes (four u32 attributes), selects default to
//! 50% selectivity over "randomly generated 32-bit integers", both as in
//! the paper.

use rand::Rng;

use kw_primitives::RaOp;
use kw_relational::{gen::rng, CmpOp, Expr, Predicate, Relation, Schema, Value};

use crate::Workload;

/// The five micro-benchmark patterns of Figure 14.
///
/// # Examples
///
/// ```
/// use kw_tpch::Pattern;
/// let workload = Pattern::C.build(1_000, 7);
/// assert_eq!(workload.data.len(), 3); // three joined tables
/// assert!(Pattern::C.description().contains("JOIN"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Back-to-back SELECTs + PROJECT (thread dependence).
    A,
    /// Back-to-back JOINs (CTA dependence).
    B,
    /// JOINs of selected tables (thread + CTA dependence).
    C,
    /// SELECTs over a shared input (input dependence).
    D,
    /// Arithmetic pipeline (thread dependence, f32).
    E,
}

impl Pattern {
    /// All five patterns in figure order.
    pub fn all() -> [Pattern; 5] {
        [Pattern::A, Pattern::B, Pattern::C, Pattern::D, Pattern::E]
    }

    /// The figure label, e.g. `"(a)"`.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::A => "(a)",
            Pattern::B => "(b)",
            Pattern::C => "(c)",
            Pattern::D => "(d)",
            Pattern::E => "(e)",
        }
    }

    /// A short description.
    pub fn description(self) -> &'static str {
        match self {
            Pattern::A => "back-to-back SELECTs",
            Pattern::B => "back-to-back JOINs",
            Pattern::C => "JOINs of selected tables",
            Pattern::D => "SELECTs sharing one input",
            Pattern::E => "arithmetic pipeline",
        }
    }

    /// Build the workload at `n` tuples per input relation.
    pub fn build(self, n: usize, seed: u64) -> Workload {
        match self {
            Pattern::A => pattern_a(n, seed),
            Pattern::B => pattern_b(n, seed),
            Pattern::C => pattern_c(n, seed),
            Pattern::D => pattern_d(n, seed),
            Pattern::E => pattern_e(n, seed),
        }
    }
}

/// 50%-selectivity predicate over a uniform u32 attribute.
fn half(attr: usize) -> Predicate {
    Predicate::cmp(attr, CmpOp::Lt, Value::U32(u32::MAX / 2))
}

fn sel(attr: usize) -> RaOp {
    RaOp::Select { pred: half(attr) }
}

/// Pattern (a): SELECT → SELECT → SELECT → PROJECT over one 16-byte-tuple
/// relation.
pub fn pattern_a(n: usize, seed: u64) -> Workload {
    let input = kw_relational::gen::micro_input(n, seed);
    let mut plan = kw_core::QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s1 = plan.add_op(sel(1), &[t]).expect("select 1");
    let s2 = plan.add_op(sel(2), &[s1]).expect("select 2");
    let s3 = plan.add_op(sel(3), &[s2]).expect("select 3");
    let pr = plan
        .add_op(
            RaOp::Project {
                attrs: vec![0, 1],
                key_arity: 1,
            },
            &[s3],
        )
        .expect("project");
    plan.mark_output(pr);
    Workload::new("pattern (a)", plan, vec![("t".into(), input)])
}

/// A table of `n` tuples (4 x u32) whose keys follow `key(i)`.
fn keyed_table(n: usize, seed: u64, key: impl Fn(usize) -> u64) -> Relation {
    let mut r = rng(seed);
    let schema = Schema::uniform_u32(4);
    let mut words = Vec::with_capacity(n * 4);
    for i in 0..n {
        words.push(key(i));
        for _ in 0..3 {
            words.push(u64::from(r.gen::<u32>()));
        }
    }
    Relation::from_words(schema, words).expect("keyed table")
}

/// The three join tables of patterns (b) and (c).
///
/// `x ⋈ y` "creates a large table" (the paper's description of pattern
/// (b)): y's keys cover the lower half of x's key space with multiplicity
/// two, so the intermediate has ~n wide tuples. z then joins selectively
/// (~n/4 results), making the intermediate the dominant data-movement cost
/// the fusion eliminates.
fn join_tables(n: usize, seed: u64) -> (Relation, Relation, Relation) {
    let x = keyed_table(n, seed, |i| (i as u64) * 2);
    let y = keyed_table(n, seed + 1, |i| ((i % (n / 2).max(1)) as u64) * 2);
    let z = keyed_table(n, seed + 2, |i| {
        if i < n / 8 {
            (i as u64) * 2
        } else {
            (i as u64) * 2 + 1
        }
    });
    (x, y, z)
}

/// Pattern (b): (x ⋈ y) ⋈ z.
pub fn pattern_b(n: usize, seed: u64) -> Workload {
    let (x, y, z) = join_tables(n, seed);
    let mut plan = kw_core::QueryPlan::new();
    let nx = plan.add_input("x", x.schema().clone());
    let ny = plan.add_input("y", y.schema().clone());
    let nz = plan.add_input("z", z.schema().clone());
    let j1 = plan
        .add_op(RaOp::Join { key_len: 1 }, &[nx, ny])
        .expect("join 1");
    let j2 = plan
        .add_op(RaOp::Join { key_len: 1 }, &[j1, nz])
        .expect("join 2");
    plan.mark_output(j2);
    Workload::new(
        "pattern (b)",
        plan,
        vec![("x".into(), x), ("y".into(), y), ("z".into(), z)],
    )
}

/// Pattern (c): (σx ⋈ σy) ⋈ σz — three small selected tables joined.
pub fn pattern_c(n: usize, seed: u64) -> Workload {
    let (x, y, z) = join_tables(n, seed);
    let mut plan = kw_core::QueryPlan::new();
    let nx = plan.add_input("x", x.schema().clone());
    let ny = plan.add_input("y", y.schema().clone());
    let nz = plan.add_input("z", z.schema().clone());
    let sx = plan.add_op(sel(1), &[nx]).expect("select x");
    let sy = plan.add_op(sel(1), &[ny]).expect("select y");
    let sz = plan.add_op(sel(1), &[nz]).expect("select z");
    let j1 = plan
        .add_op(RaOp::Join { key_len: 1 }, &[sx, sy])
        .expect("join 1");
    let j2 = plan
        .add_op(RaOp::Join { key_len: 1 }, &[j1, sz])
        .expect("join 2");
    plan.mark_output(j2);
    Workload::new(
        "pattern (c)",
        plan,
        vec![("x".into(), x), ("y".into(), y), ("z".into(), z)],
    )
}

/// Pattern (d): two SELECTs filtering the same input.
pub fn pattern_d(n: usize, seed: u64) -> Workload {
    let input = kw_relational::gen::micro_input(n, seed);
    let mut plan = kw_core::QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s1 = plan.add_op(sel(1), &[t]).expect("select 1");
    let s2 = plan.add_op(sel(2), &[t]).expect("select 2");
    plan.mark_output(s1);
    plan.mark_output(s2);
    Workload::new("pattern (d)", plan, vec![("t".into(), input)])
}

/// Pattern (e): `price * (1 - discount) * (1 + tax)` as a chain of
/// arithmetic MAPs over f32 data.
pub fn pattern_e(n: usize, seed: u64) -> Workload {
    let mut r = rng(seed);
    let schema = Schema::new(
        vec![
            kw_relational::AttrType::U32,
            kw_relational::AttrType::F32,
            kw_relational::AttrType::F32,
            kw_relational::AttrType::F32,
        ],
        1,
    );
    let mut words = Vec::with_capacity(n * 4);
    for _ in 0..n {
        words.push(u64::from(r.gen::<u32>()));
        words.push(Value::F32(r.gen_range(1.0..100.0)).encode());
        words.push(Value::F32(r.gen_range(0.0..0.1)).encode());
        words.push(Value::F32(r.gen_range(0.0..0.08)).encode());
    }
    let input = Relation::from_words(schema.clone(), words).expect("pattern (e) input");

    let mut plan = kw_core::QueryPlan::new();
    let t = plan.add_input("t", schema);
    // m1: (key, price, 1 - discount, tax)
    let m1 = plan
        .add_op(
            RaOp::Map {
                exprs: vec![
                    Expr::attr(0),
                    Expr::attr(1),
                    Expr::lit(1.0f32).sub(Expr::attr(2)),
                    Expr::attr(3),
                ],
                key_arity: 1,
            },
            &[t],
        )
        .expect("map 1");
    // m2: (key, price * (1-discount), tax)
    let m2 = plan
        .add_op(
            RaOp::Map {
                exprs: vec![
                    Expr::attr(0),
                    Expr::attr(1).mul(Expr::attr(2)),
                    Expr::attr(3),
                ],
                key_arity: 1,
            },
            &[m1],
        )
        .expect("map 2");
    // m3: (key, discounted * (1 + tax))
    let m3 = plan
        .add_op(
            RaOp::Map {
                exprs: vec![
                    Expr::attr(0),
                    Expr::attr(1).mul(Expr::lit(1.0f32).add(Expr::attr(2))),
                ],
                key_arity: 1,
            },
            &[m2],
        )
        .expect("map 3");
    plan.mark_output(m3);
    Workload::new("pattern (e)", plan, vec![("t".into(), input)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::WeaverConfig;
    use kw_gpu_sim::{Device, DeviceConfig};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    #[test]
    fn all_patterns_run_fused_and_baseline_identically() {
        for p in Pattern::all() {
            let w = p.build(2_000, 7);
            let mut d1 = device();
            let fused = w.run(&mut d1, &WeaverConfig::default()).unwrap();
            let mut d2 = device();
            let base = w.run(&mut d2, &WeaverConfig::default().baseline()).unwrap();
            assert_eq!(
                fused.outputs,
                base.outputs,
                "{} fused/baseline mismatch",
                p.label()
            );
        }
    }

    #[test]
    fn selects_are_half_selective() {
        let w = pattern_a(4_000, 1);
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let out = r.outputs.values().next().unwrap();
        let frac = out.len() as f64 / 4_000.0;
        assert!((frac - 0.125).abs() < 0.03, "3 selects at 50%: {frac}");
    }

    #[test]
    fn pattern_b_joins_have_expected_cardinality() {
        let n = 4_000;
        let w = pattern_b(n, 2);
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let out = r.outputs.values().next().unwrap();
        let frac = out.len() as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "expected n/4 join rows: {frac}");
    }

    #[test]
    fn every_pattern_fuses_something() {
        for p in Pattern::all() {
            let w = p.build(1_000, 3);
            let compiled = kw_core::compile(&w.plan, &WeaverConfig::default()).unwrap();
            assert!(
                !compiled.fusion_sets.is_empty(),
                "{} produced no fusion",
                p.label()
            );
        }
    }

    #[test]
    fn pattern_e_computes_revenue() {
        let w = pattern_e(100, 5);
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let out = r.outputs.values().next().unwrap();
        assert_eq!(out.schema().arity(), 2);
        assert_eq!(out.len(), 100);
    }
}
