//! Additional TPC-H queries (Q3, Q6) supporting the paper's closing claim
//! that the fused patterns "appear very frequently in all 22 queries of
//! TPC-H so that they can all get similar speedup from kernel fusion".
//!
//! Q6 is the simplest arithmetic-centric query (filters + one revenue
//! expression + a global sum); Q3 is a three-table join pipeline with two
//! SORT re-keying boundaries, like Q21 but shallower.

use kw_primitives::RaOp;
use kw_relational::ops::AggFn;
use kw_relational::{CmpOp, Expr, Predicate, Value};

use crate::schema::{customer as c, lineitem as l, orders as o, SEGMENT_BUILDING};
use crate::{generate, TpchDb, Workload, DATE_MAX};

/// Q6's date-window start (one "year" before the end of the domain).
pub const Q6_DATE_START: u32 = DATE_MAX - 365;

/// Build TPC-H Q6 ("forecasting revenue change") over a generated database.
///
/// ```sql
/// SELECT SUM(extendedprice * discount) FROM lineitem
/// WHERE shipdate >= :start AND shipdate < :start + 365
///   AND discount BETWEEN 0.05 AND 0.07 AND quantity < 24
/// ```
///
/// Two chained SELECTs and one arithmetic MAP — all fusible — feeding a
/// global (ungrouped) SUM.
pub fn q6(scale: f64, seed: u64) -> Workload {
    q6_plan(generate(scale, seed))
}

/// Q6 over an existing database.
pub fn q6_plan(db: TpchDb) -> Workload {
    let mut plan = kw_core::QueryPlan::new();
    let li = plan.add_input("lineitem", db.lineitem.schema().clone());

    // Date window.
    let dated = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(l::SHIPDATE, CmpOp::Ge, Value::U32(Q6_DATE_START))
                    .and(Predicate::cmp(l::SHIPDATE, CmpOp::Lt, Value::U32(DATE_MAX))),
            },
            &[li],
        )
        .expect("q6 date select");

    // Discount band and quantity cap.
    let banded = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(l::DISCOUNT, CmpOp::Ge, Value::F32(0.05))
                    .and(Predicate::cmp(l::DISCOUNT, CmpOp::Le, Value::F32(0.07)))
                    .and(Predicate::cmp(l::QUANTITY, CmpOp::Lt, Value::F32(24.0))),
            },
            &[dated],
        )
        .expect("q6 band select");

    // revenue = extendedprice * discount.
    let revenue = plan
        .add_op(
            RaOp::Map {
                exprs: vec![Expr::attr(l::EXTENDEDPRICE).mul(Expr::attr(l::DISCOUNT))],
                key_arity: 0,
            },
            &[banded],
        )
        .expect("q6 map");

    // Global sum (no grouping).
    let total = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![],
                aggs: vec![AggFn::Sum(0), AggFn::Count],
            },
            &[revenue],
        )
        .expect("q6 sum");
    plan.mark_output(total);

    Workload::new("TPC-H Q6", plan, vec![("lineitem".into(), db.lineitem)])
}

/// Q3's order-date / ship-date pivot.
pub const Q3_DATE: u32 = DATE_MAX / 2;

/// Build TPC-H Q3 ("shipping priority") over a generated database.
///
/// ```sql
/// SELECT l_orderkey, SUM(extendedprice * (1 - discount)) AS revenue
/// FROM customer, orders, lineitem
/// WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
///   AND l_orderkey = o_orderkey AND o_orderdate < :date AND l_shipdate > :date
/// GROUP BY l_orderkey
/// ```
pub fn q3(scale: f64, seed: u64) -> Workload {
    q3_plan(generate(scale, seed))
}

/// Q3 over an existing database.
pub fn q3_plan(db: TpchDb) -> Workload {
    let mut plan = kw_core::QueryPlan::new();
    let cu = plan.add_input("customer", db.customer.schema().clone());
    let or = plan.add_input("orders", db.orders.schema().clone());
    let li = plan.add_input("lineitem", db.lineitem.schema().clone());

    // BUILDING customers, trimmed to their key.
    let building = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(c::MKTSEGMENT, CmpOp::Eq, Value::U32(SEGMENT_BUILDING)),
            },
            &[cu],
        )
        .expect("q3 segment select");
    let ckeys = plan
        .add_op(
            RaOp::Project {
                attrs: vec![c::CUSTKEY],
                key_arity: 1,
            },
            &[building],
        )
        .expect("q3 customer project");

    // Orders before the pivot date, re-keyed to custkey (SORT boundary).
    let recent = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(o::ORDERDATE, CmpOp::Lt, Value::U32(Q3_DATE)),
            },
            &[or],
        )
        .expect("q3 order select");
    let by_cust = plan
        .add_op(
            RaOp::Sort {
                attrs: vec![o::CUSTKEY],
            },
            &[recent],
        )
        .expect("q3 sort by custkey");
    // Layout after sort: (ck, ok, status, odate).

    // Join customers and re-key the result back to orderkey.
    let cj = plan
        .add_op(RaOp::Join { key_len: 1 }, &[ckeys, by_cust])
        .expect("q3 customer join");
    let by_order = plan
        .add_op(RaOp::Sort { attrs: vec![1] }, &[cj])
        .expect("q3 sort by orderkey");
    // Layout: (ok, ck, status, odate).

    // Lineitems shipped after the pivot, trimmed to (ok, price, discount).
    let shipped = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(l::SHIPDATE, CmpOp::Gt, Value::U32(Q3_DATE)),
            },
            &[li],
        )
        .expect("q3 lineitem select");
    let ltrim = plan
        .add_op(
            RaOp::Project {
                attrs: vec![l::ORDERKEY, l::EXTENDEDPRICE, l::DISCOUNT],
                key_arity: 1,
            },
            &[shipped],
        )
        .expect("q3 lineitem project");

    // Join and compute revenue per row.
    let j = plan
        .add_op(RaOp::Join { key_len: 1 }, &[by_order, ltrim])
        .expect("q3 final join");
    // Layout: (ok, ck, status, odate, price, discount).
    let rev = plan
        .add_op(
            RaOp::Map {
                exprs: vec![
                    Expr::attr(0),
                    Expr::attr(4).mul(Expr::lit(1.0f32).sub(Expr::attr(5))),
                ],
                key_arity: 1,
            },
            &[j],
        )
        .expect("q3 revenue map");

    // GROUP BY orderkey.
    let grouped = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggFn::Sum(1)],
            },
            &[rev],
        )
        .expect("q3 aggregate");
    plan.mark_output(grouped);

    Workload::new(
        "TPC-H Q3",
        plan,
        vec![
            ("customer".into(), db.customer),
            ("orders".into(), db.orders),
            ("lineitem".into(), db.lineitem),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::WeaverConfig;
    use kw_gpu_sim::{Device, DeviceConfig};
    use kw_relational::Value as V;

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    #[test]
    fn q6_matches_brute_force() {
        let db = generate(1.0, 51);
        let w = q6_plan(db.clone());
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let out = r.outputs.values().next().unwrap();
        assert_eq!(out.len(), 1);
        let got = match out.value(0, 0) {
            V::F32(x) => f64::from(x),
            v => panic!("{v:?}"),
        };

        let mut expected = 0.0f64;
        for i in 0..db.lineitem.len() {
            let t = db.lineitem.tuple(i);
            let ship = t[crate::schema::lineitem::SHIPDATE] as u32;
            let disc = f32::from_bits(t[crate::schema::lineitem::DISCOUNT] as u32);
            let qty = f32::from_bits(t[crate::schema::lineitem::QUANTITY] as u32);
            let price = f32::from_bits(t[crate::schema::lineitem::EXTENDEDPRICE] as u32);
            if (Q6_DATE_START..DATE_MAX).contains(&ship)
                && (0.05..=0.07).contains(&disc)
                && qty < 24.0
            {
                expected += f64::from(price) * f64::from(disc);
            }
        }
        let rel_err = (got - expected).abs() / expected.max(1.0);
        assert!(rel_err < 1e-3, "{got} vs {expected}");
    }

    #[test]
    fn q6_fuses_everything_but_the_sum() {
        let w = q6(1.0, 52);
        let compiled = kw_core::compile(&w.plan, &WeaverConfig::default()).unwrap();
        // selects + map fuse into one kernel; the aggregate stays.
        assert_eq!(compiled.steps.len(), 2);
        assert!(compiled.steps.iter().any(|s| s.fused));
    }

    #[test]
    fn q3_fused_equals_baseline() {
        let w = q3(1.0, 53);
        let mut d1 = device();
        let fused = w.run(&mut d1, &WeaverConfig::default()).unwrap();
        let mut d2 = device();
        let base = w.run(&mut d2, &WeaverConfig::default().baseline()).unwrap();
        assert_eq!(fused.outputs, base.outputs);
        assert!(base.gpu_seconds > fused.gpu_seconds);
        let out = fused.outputs.values().next().unwrap();
        assert!(!out.is_empty());
        assert_eq!(out.schema().arity(), 2);
    }

    #[test]
    fn q3_matches_brute_force() {
        use std::collections::BTreeMap;
        let db = generate(1.0, 54);
        let w = q3_plan(db.clone());
        let mut d = device();
        let r = w.run(&mut d, &WeaverConfig::default()).unwrap();
        let got: BTreeMap<u64, f32> = r
            .outputs
            .values()
            .next()
            .unwrap()
            .iter()
            .map(|t| (t[0], f32::from_bits(t[1] as u32)))
            .collect();

        let building: std::collections::BTreeSet<u64> = db
            .customer
            .iter()
            .filter(|t| t[c::MKTSEGMENT] == u64::from(SEGMENT_BUILDING))
            .map(|t| t[c::CUSTKEY])
            .collect();
        let qualifying_orders: std::collections::BTreeSet<u64> = db
            .orders
            .iter()
            .filter(|t| (t[o::ORDERDATE] as u32) < Q3_DATE && building.contains(&t[o::CUSTKEY]))
            .map(|t| t[o::ORDERKEY])
            .collect();
        let mut expected: BTreeMap<u64, f64> = BTreeMap::new();
        for i in 0..db.lineitem.len() {
            let t = db.lineitem.tuple(i);
            if (t[l::SHIPDATE] as u32) > Q3_DATE && qualifying_orders.contains(&t[l::ORDERKEY]) {
                let price = f32::from_bits(t[l::EXTENDEDPRICE] as u32);
                let disc = f32::from_bits(t[l::DISCOUNT] as u32);
                *expected.entry(t[l::ORDERKEY]).or_insert(0.0) +=
                    f64::from(price) * f64::from(1.0 - disc);
            }
        }
        assert_eq!(got.len(), expected.len());
        for (k, v) in &got {
            let e = expected[k];
            assert!(
                (f64::from(*v) - e).abs() / e.max(1.0) < 1e-3,
                "order {k}: {v} vs {e}"
            );
        }
    }
}
