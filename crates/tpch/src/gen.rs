//! Synthetic TPC-H data generation.
//!
//! Cardinality ratios follow TPC-H (6,000 lineitems / 1,500 orders / 100
//! suppliers per unit of scale; 25 nations), with value distributions chosen
//! to match the selectivities the queries exercise: Q1's shipdate filter
//! keeps ~98% of lineitem, ~49% of orders have status 'F', etc. Scale
//! factor 1.0 here corresponds to roughly 1/1000 of dbgen's SF-1 so the
//! simulator sweeps stay fast; the cost model is linear in input size above
//! the launch-overhead regime.

use rand::Rng;

use kw_relational::{gen::rng, Relation, Value};

use crate::schema::{
    customer_schema, lineitem_schema, nation_schema, orders_schema, supplier_schema, NATION_COUNT,
    SEGMENT_COUNT,
};

/// Day-number domain for dates.
pub const DATE_MIN: u32 = 0;
/// Upper bound of the date domain.
pub const DATE_MAX: u32 = 2_500;
/// Q1's `shipdate <= DATE_MAX - 90` threshold.
pub const Q1_SHIPDATE_THRESHOLD: u32 = DATE_MAX - 90;

/// A generated TPC-H-like database.
#[derive(Debug, Clone)]
pub struct TpchDb {
    /// The `lineitem` table.
    pub lineitem: Relation,
    /// The `orders` table.
    pub orders: Relation,
    /// The `customer` table.
    pub customer: Relation,
    /// The `supplier` table.
    pub supplier: Relation,
    /// The `nation` table.
    pub nation: Relation,
}

impl TpchDb {
    /// Bindings suitable for [`kw_core::execute_plan`].
    pub fn bindings(&self) -> Vec<(&str, &Relation)> {
        vec![
            ("lineitem", &self.lineitem),
            ("orders", &self.orders),
            ("customer", &self.customer),
            ("supplier", &self.supplier),
            ("nation", &self.nation),
        ]
    }
}

/// Generate a database at `scale` (1.0 ≈ 6,000 lineitems).
pub fn generate(scale: f64, seed: u64) -> TpchDb {
    let mut r = rng(seed);
    let n_orders = ((1_500.0 * scale) as usize).max(4);
    let n_lineitem = ((6_000.0 * scale) as usize).max(8);
    let n_supplier = ((100.0 * scale) as usize).max(4);
    let n_customer = ((150.0 * scale) as usize).max(4);

    // nation: keys 0..25.
    let nation = {
        let mut words = Vec::new();
        for k in 0..NATION_COUNT {
            words.push(u64::from(k));
            words.push(u64::from(r.gen_range(0..5u32))); // regionkey
        }
        Relation::from_words(nation_schema(), words).expect("nation rows")
    };

    // supplier: unique suppkeys, random nations.
    let supplier = {
        let mut words = Vec::new();
        for k in 0..n_supplier as u32 {
            words.push(u64::from(k));
            words.push(u64::from(r.gen_range(0..NATION_COUNT)));
        }
        Relation::from_words(supplier_schema(), words).expect("supplier rows")
    };

    // customer: unique custkeys, random segment and nation.
    let customer = {
        let mut words = Vec::new();
        for k in 0..n_customer as u32 {
            words.push(u64::from(k));
            words.push(u64::from(r.gen_range(0..SEGMENT_COUNT)));
            words.push(u64::from(r.gen_range(0..NATION_COUNT)));
        }
        Relation::from_words(customer_schema(), words).expect("customer rows")
    };

    // orders: unique orderkeys; ~49% status F; uniform order dates.
    let orders = {
        let mut words = Vec::new();
        for k in 0..n_orders as u32 {
            words.push(u64::from(k));
            let status = if r.gen_bool(0.49) {
                0u32
            } else {
                1 + r.gen_range(0..2u32)
            };
            words.push(u64::from(status));
            words.push(u64::from(r.gen_range(0..n_customer as u32))); // custkey
            words.push(u64::from(r.gen_range(DATE_MIN..DATE_MAX))); // orderdate
        }
        Relation::from_words(orders_schema(), words).expect("orders rows")
    };

    // lineitem: each row belongs to a random order and supplier.
    let lineitem = {
        let mut words = Vec::with_capacity(n_lineitem * 11);
        for _ in 0..n_lineitem {
            let orderkey = r.gen_range(0..n_orders as u32);
            let suppkey = r.gen_range(0..n_supplier as u32);
            let quantity = r.gen_range(1..51) as f32;
            let price = r.gen_range(900.0..105_000.0f32);
            let discount = r.gen_range(0..11) as f32 / 100.0;
            let tax = r.gen_range(0..9) as f32 / 100.0;
            let returnflag = r.gen_range(0..3u32);
            let linestatus = r.gen_range(0..2u32);
            let shipdate = r.gen_range(DATE_MIN..DATE_MAX);
            let commitdate = shipdate.saturating_add(r.gen_range(0..60));
            // ~40% of lineitems are late (receipt after commit), feeding Q21.
            let late = r.gen_bool(0.4);
            let receiptdate = if late {
                commitdate + r.gen_range(1..30)
            } else {
                commitdate.saturating_sub(r.gen_range(0..15))
            };
            words.push(u64::from(orderkey));
            words.push(u64::from(suppkey));
            words.push(Value::F32(quantity).encode());
            words.push(Value::F32(price).encode());
            words.push(Value::F32(discount).encode());
            words.push(Value::F32(tax).encode());
            words.push(u64::from(returnflag));
            words.push(u64::from(linestatus));
            words.push(u64::from(shipdate));
            words.push(u64::from(commitdate));
            words.push(u64::from(receiptdate));
        }
        Relation::from_words(lineitem_schema(), words).expect("lineitem rows")
    };

    TpchDb {
        lineitem,
        orders,
        customer,
        supplier,
        nation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::lineitem;
    use kw_relational::{ops, CmpOp, Predicate};

    #[test]
    fn cardinalities_scale() {
        let db = generate(1.0, 1);
        assert_eq!(db.lineitem.len(), 6_000);
        assert_eq!(db.orders.len(), 1_500);
        assert_eq!(db.supplier.len(), 100);
        assert_eq!(db.customer.len(), 150);
        assert_eq!(db.nation.len(), 25);
        let db2 = generate(2.0, 1);
        assert_eq!(db2.lineitem.len(), 12_000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(0.5, 9).lineitem, generate(0.5, 9).lineitem);
    }

    #[test]
    fn q1_filter_keeps_most_rows() {
        let db = generate(1.0, 2);
        let pred = Predicate::cmp(
            lineitem::SHIPDATE,
            CmpOp::Le,
            Value::U32(Q1_SHIPDATE_THRESHOLD),
        );
        let kept = ops::select(&db.lineitem, &pred).unwrap();
        let frac = kept.len() as f64 / db.lineitem.len() as f64;
        assert!(frac > 0.9 && frac < 1.0, "{frac}");
    }

    #[test]
    fn late_lineitems_fraction() {
        let db = generate(1.0, 3);
        let pred = Predicate::cmp_attr(lineitem::RECEIPTDATE, CmpOp::Gt, lineitem::COMMITDATE);
        let late = ops::select(&db.lineitem, &pred).unwrap();
        let frac = late.len() as f64 / db.lineitem.len() as f64;
        assert!((frac - 0.4).abs() < 0.05, "{frac}");
    }
}
