//! Resilient execution: run a plan that cannot fit GPU-resident on a 1 MiB
//! device while transient PCIe/launch faults are being injected — the
//! resilient driver picks a rung of the Resident → Staged → Chunked ladder
//! via admission control, retries transient faults with backoff, and reports
//! exactly what it survived.
//!
//! ```bash
//! cargo run --release -p kw-examples --example resilience
//! ```

use kw_core::{execute_resilient, QueryPlan, RetryPolicy, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig, FaultConfig};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A SELECT chain over 32Ki tuples: ~0.5 MiB of input, which needs
    // ~1.5 MiB resident — too much for the 1 MiB device below.
    let input = gen::micro_input(32_768, 7);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s1 = plan.add_op(
        RaOp::Select {
            pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2)),
        },
        &[t],
    )?;
    let s2 = plan.add_op(
        RaOp::Select {
            pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
        },
        &[s1],
    )?;
    plan.mark_output(s2);

    let mut device = Device::new(DeviceConfig::tiny()); // 1 MiB of global memory
                                                        // 10% of transfers and kernel launches fail transiently, deterministically
                                                        // from this seed.
    device.inject_faults(FaultConfig {
        seed: 0xFA17,
        transfer_rate: 0.10,
        launch_rate: 0.10,
        ..FaultConfig::default()
    });

    let policy = RetryPolicy {
        max_retries: 64,
        base_backoff_seconds: 1e-4,
        backoff_multiplier: 1.05,
    };
    let report = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut device,
        &WeaverConfig::default(),
        &policy,
    )?;

    let res = report.resilience.as_ref().expect("resilient runs report");
    println!("admission: capacity {} B", res.admission.capacity);
    println!(
        "           resident needs {} B, staged {} B  ->  admitted {}",
        res.admission.resident_peak, res.admission.staged_peak, res.admitted
    );
    println!("final mode: {}", res.final_mode);
    println!(
        "attempts {} (retries {}, faults survived {})",
        res.attempts, res.retries, res.faults_survived
    );
    for d in &res.degradations {
        println!("degraded {} -> {}: {}", d.from, d.to, d.reason);
    }
    println!(
        "backoff charged: {:.3} ms of {:.3} ms total",
        res.backoff_seconds * 1e3,
        report.total_seconds * 1e3
    );
    let rows: usize = report.outputs.values().map(|r| r.len()).sum();
    println!("output rows: {rows}");
    assert_eq!(device.memory().in_use(), 0, "nothing may leak");
    println!("device memory in use after run: 0 B");
    Ok(())
}
