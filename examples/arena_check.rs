//! CI gate for the device-side scratch arena.
//!
//! Two halves, both of which must pass:
//!
//! 1. **Live invariants.** Runs patterns (a)–(d) fused and unfused on
//!    fresh devices and checks the arena contract directly: exactly one
//!    Alloc and one Free span per plan (sub-allocations are span-free),
//!    `high_water <= reservation`, zero spills (the admission predictor
//!    replays the executor's schedule, so the reservation is exact), and
//!    the device tracker's peak equal to the reservation — the
//!    predictor-fidelity claim, bit-exact.
//! 2. **JSON schema.** Re-parses `BENCH_arena.json` (hand-rolled JSON, so
//!    a writer bug shows up as a syntax error here), verifies the keys
//!    the regression gate consumes, and re-checks the span-count bound,
//!    spill freedom and byte envelopes row by row.
//!
//! ```bash
//! cargo run -p kw-examples --example arena_check [path/to/BENCH_arena.json]
//! ```

use kw_gpu_sim::{parse_json, validate_json, Device, DeviceConfig, JsonValue, SpanKind};
use kw_tpch::Pattern;

/// Keys the bench_regression gate and EXPERIMENTS.md consume.
const REQUIRED_KEYS: [&str; 11] = [
    "\"experiment\"",
    "\"tuples_per_input\"",
    "\"rows\"",
    "\"pattern\"",
    "\"fused_alloc_spans\"",
    "\"unfused_alloc_spans\"",
    "\"fused_sub_allocs\"",
    "\"unfused_sub_allocs\"",
    "\"saved_alloc_pairs\"",
    "\"reservation_bytes\"",
    "\"high_water_bytes\"",
];

/// Alloc or Free spans a single plan may emit: one reservation, one
/// release. The whole point of the arena is that this does not scale
/// with plan depth or chunk count.
const SPAN_BOUND: u64 = 1;

fn check_live() -> u32 {
    let mut failures = 0;
    for pattern in [Pattern::A, Pattern::B, Pattern::C, Pattern::D] {
        let w = pattern.build(1 << 12, 0xC2050);
        for (variant, cfg) in [
            ("fused", kw_core::WeaverConfig::default()),
            ("unfused", kw_core::WeaverConfig::default().baseline()),
        ] {
            let mut dev = Device::new(DeviceConfig::fermi_c2050());
            let report = match w.run(&mut dev, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("INVALID: {} {variant} failed to execute: {e}", w.name);
                    failures += 1;
                    continue;
                }
            };
            let count =
                |kind: SpanKind| report.spans.iter().filter(|s| s.kind == kind).count() as u64;
            let (allocs, frees) = (count(SpanKind::Alloc), count(SpanKind::Free));
            if allocs > SPAN_BOUND || frees > SPAN_BOUND {
                eprintln!(
                    "INVALID: {} {variant} emitted {allocs} Alloc / {frees} Free spans \
                     (bound: {SPAN_BOUND} each)",
                    w.name
                );
                failures += 1;
            }
            let Some(arena) = report.arena else {
                eprintln!("INVALID: {} {variant} reported no arena stats", w.name);
                failures += 1;
                continue;
            };
            if arena.high_water > arena.reservation {
                eprintln!(
                    "INVALID: {} {variant} high-water {} exceeds its reservation {}",
                    w.name, arena.high_water, arena.reservation
                );
                failures += 1;
            }
            let spills = dev.metrics().counter("kw_arena_spills_total");
            if spills != 0 {
                eprintln!(
                    "INVALID: {} {variant} spilled {spills} buffers past the reservation",
                    w.name
                );
                failures += 1;
            }
            if dev.memory().peak() != arena.reservation {
                eprintln!(
                    "INVALID: {} {variant} tracker peak {} != reservation {} — the \
                     admission predictor drifted from the executor's schedule",
                    w.name,
                    dev.memory().peak(),
                    arena.reservation
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "live: 4 patterns x 2 variants hold the span bound, spill-free, \
             high-water <= reservation, peak == reservation"
        );
    }
    failures
}

fn check_json(path: &str) -> u32 {
    let mut failures = 0;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("INVALID: cannot read {path}: {e}");
            eprintln!("(run `cargo run -p kw-bench --bin paper_tables -- arena` first)");
            return 1;
        }
    };
    match validate_json(&text) {
        Ok(()) => println!("{path}: well-formed JSON ({} bytes)", text.len()),
        Err(e) => {
            eprintln!("INVALID: {path} does not parse: {e}");
            failures += 1;
        }
    }
    for key in REQUIRED_KEYS {
        if !text.contains(key) {
            eprintln!("INVALID: {path} is missing required key {key}");
            failures += 1;
        }
    }

    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(_) => return failures.max(1),
    };
    let Some(JsonValue::Array(rows)) = doc.get("rows") else {
        eprintln!("INVALID: {path} has no rows array");
        return failures + 1;
    };
    if rows.is_empty() {
        eprintln!("INVALID: {path} has an empty rows array");
        failures += 1;
    }
    let num = |row: &JsonValue, key: &str| -> Option<f64> {
        match row.get(key) {
            Some(JsonValue::Number(v)) => Some(*v),
            _ => None,
        }
    };
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "fused_alloc_spans",
            "fused_free_spans",
            "unfused_alloc_spans",
            "unfused_free_spans",
        ] {
            match num(row, key) {
                Some(v) if v <= SPAN_BOUND as f64 => {}
                other => {
                    eprintln!("INVALID: rows[{i}].{key} must be <= {SPAN_BOUND}, got {other:?}");
                    failures += 1;
                }
            }
        }
        match num(row, "spills") {
            Some(0.0) => {}
            other => {
                eprintln!("INVALID: rows[{i}] must be spill-free, got {other:?}");
                failures += 1;
            }
        }
        match (num(row, "high_water_bytes"), num(row, "reservation_bytes")) {
            (Some(hw), Some(res)) if hw <= res && res > 0.0 => {}
            (hw, res) => {
                eprintln!("INVALID: rows[{i}] needs 0 < high-water {hw:?} <= reservation {res:?}");
                failures += 1;
            }
        }
        match (
            num(row, "saved_alloc_pairs"),
            num(row, "unfused_sub_allocs"),
            num(row, "unfused_alloc_spans"),
        ) {
            (Some(saved), Some(sub), Some(spans)) if saved == sub - spans && saved > 0.0 => {}
            (saved, sub, spans) => {
                eprintln!(
                    "INVALID: rows[{i}] saved_alloc_pairs {saved:?} must equal \
                     unfused_sub_allocs {sub:?} - unfused_alloc_spans {spans:?}, positive"
                );
                failures += 1;
            }
        }
        match (num(row, "fused_seconds"), num(row, "unfused_seconds")) {
            (Some(f), Some(u)) if f > 0.0 && u > 0.0 => {}
            (f, u) => {
                eprintln!("INVALID: rows[{i}] needs positive wallclocks, got {f:?}/{u:?}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "{path}: all {} required keys present, {} rows hold the span bound \
             and byte envelopes",
            REQUIRED_KEYS.len(),
            rows.len()
        );
    }
    failures
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_arena.json".into());
    let failures = check_live() + check_json(&path);
    if failures > 0 {
        std::process::exit(1);
    }
}
