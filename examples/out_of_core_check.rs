//! CI gate for the out-of-core chunking campaign's JSON export.
//!
//! Re-parses `bench_results/BENCH_out_of_core.json` (hand-rolled JSON, so
//! a writer bug shows up as a syntax error here), verifies the keys the
//! regression gate consumes, and checks the campaign's structural
//! invariants row by row:
//!
//! * every row's device is strictly smaller than its input footprint —
//!   otherwise the run never left core and the numbers measure nothing;
//! * every row chunked (`chunks >= 2`) under a named strategy;
//! * fused and unfused times are positive and `fusion_gain` is their
//!   ratio.
//!
//! ```bash
//! cargo run -p kw-examples --example out_of_core_check [path/to/file.json]
//! ```

use kw_gpu_sim::{parse_json, validate_json, JsonValue};

/// Keys the bench_regression gate and EXPERIMENTS.md consume.
const REQUIRED_KEYS: [&str; 10] = [
    "\"experiment\"",
    "\"tuples_per_input\"",
    "\"rows\"",
    "\"pattern\"",
    "\"strategy\"",
    "\"input_bytes\"",
    "\"device_bytes\"",
    "\"chunks\"",
    "\"fused_seconds\"",
    "\"fusion_gain\"",
];

/// Strategies the chunk-strategy layer can select.
const STRATEGIES: [&str; 3] = ["row-slice", "hash-partition", "partial-aggregate"];

fn check_json(path: &str) -> u32 {
    let mut failures = 0;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("INVALID: cannot read {path}: {e}");
            eprintln!("(run `cargo run -p kw-bench --bin paper_tables -- out_of_core` first)");
            return 1;
        }
    };
    match validate_json(&text) {
        Ok(()) => println!("{path}: well-formed JSON ({} bytes)", text.len()),
        Err(e) => {
            eprintln!("INVALID: {path} does not parse: {e}");
            failures += 1;
        }
    }
    for key in REQUIRED_KEYS {
        if !text.contains(key) {
            eprintln!("INVALID: {path} is missing required key {key}");
            failures += 1;
        }
    }

    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(_) => return failures.max(1),
    };
    let Some(JsonValue::Array(rows)) = doc.get("rows") else {
        eprintln!("INVALID: {path} has no rows array");
        return failures + 1;
    };
    if rows.is_empty() {
        eprintln!("INVALID: {path} has an empty rows array");
        failures += 1;
    }
    let num = |row: &JsonValue, key: &str| -> Option<f64> {
        match row.get(key) {
            Some(JsonValue::Number(v)) => Some(*v),
            _ => None,
        }
    };
    for (i, row) in rows.iter().enumerate() {
        match row.get("strategy") {
            Some(JsonValue::Str(s)) if STRATEGIES.contains(&s.as_str()) => {}
            other => {
                eprintln!("INVALID: rows[{i}] has no known strategy: {other:?}");
                failures += 1;
            }
        }
        match (num(row, "input_bytes"), num(row, "device_bytes")) {
            (Some(input), Some(device)) if device < input => {}
            (input, device) => {
                eprintln!(
                    "INVALID: rows[{i}] device ({device:?} B) must be below its \
                     inputs ({input:?} B) for an out-of-core claim"
                );
                failures += 1;
            }
        }
        match num(row, "chunks") {
            Some(c) if c >= 2.0 => {}
            other => {
                eprintln!("INVALID: rows[{i}] must chunk (chunks >= 2), got {other:?}");
                failures += 1;
            }
        }
        let fused = num(row, "fused_seconds");
        let unfused = num(row, "unfused_seconds");
        let gain = num(row, "fusion_gain");
        match (fused, unfused, gain) {
            (Some(f), Some(u), Some(g)) if f > 0.0 && u > 0.0 => {
                if (g - u / f).abs() > 1e-9 * g.abs().max(1.0) {
                    eprintln!(
                        "INVALID: rows[{i}] fusion_gain {g} is not unfused/fused = {}",
                        u / f
                    );
                    failures += 1;
                }
            }
            _ => {
                eprintln!(
                    "INVALID: rows[{i}] needs positive fused/unfused seconds and a \
                     fusion_gain, got {fused:?}/{unfused:?}/{gain:?}"
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "{path}: all {} required keys present, {} rows out-of-core-consistent",
            REQUIRED_KEYS.len(),
            rows.len()
        );
    }
    failures
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_out_of_core.json".into());
    if check_json(&path) > 0 {
        std::process::exit(1);
    }
}
