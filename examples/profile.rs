//! Observability tour and CI schema gate for the telemetry subsystem.
//!
//! Runs pattern (d) staged (transfer-bound on the discrete Fermi) and a
//! small multi-query batch, then:
//!
//! * prints the bottleneck-attribution profile (`ProfileReport::summary`),
//! * prints the device metrics registry in Prometheus text format,
//! * validates that the registry's JSON export and the profile's JSON
//!   export parse and carry every key downstream tooling consumes.
//!
//! Exits non-zero on any failure so `ci.sh` can gate on it.
//!
//! ```bash
//! cargo run -p kw-examples --example profile
//! ```

use kw_core::{execute_batch, BatchQuery, ExecMode, WeaverConfig};
use kw_gpu_sim::{parse_json, Device, DeviceConfig};
use kw_relational::Relation;
use kw_tpch::Pattern;

/// Counters the device must publish on any kernel-running workload.
const REQUIRED_METRICS: [&str; 6] = [
    "kw_spans_total",
    "kw_kernel_launches_total",
    "kw_gpu_cycles_total",
    "kw_global_bytes_total",
    "kw_kernel_cycles",
    "kw_plans_executed_total",
];

/// Keys the profile JSON export must carry.
const REQUIRED_PROFILE_KEYS: [&str; 6] = [
    "\"bottleneck\"",
    "\"gpu_busy_fraction\"",
    "\"pcie_busy_fraction\"",
    "\"launch_share\"",
    "\"global_bw_utilization\"",
    "\"operators\"",
];

fn main() {
    let mut failures = 0usize;

    // --- Single staged query: profile + registry. ---
    let w = Pattern::D.build(1 << 16, 0xC2050);
    let cfg = WeaverConfig {
        mode: ExecMode::Staged,
        ..WeaverConfig::default()
    };
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = w.run(&mut dev, &cfg).expect("pattern (d) staged executes");

    println!("== Bottleneck profile: pattern (d), staged, Fermi C2050 ==");
    println!("{}", report.profile.summary());
    if report.profile.bottleneck != kw_core::Bottleneck::Transfer {
        eprintln!(
            "INVALID: pattern (d) staged should be transfer-bound, got {}",
            report.profile.bottleneck
        );
        failures += 1;
    }

    println!("== Device metrics (Prometheus text format) ==");
    print!("{}", dev.metrics().prometheus_text());
    println!();

    // --- Schema gates: both JSON exports parse and carry their keys. ---
    let metrics_json = dev.metrics().to_json();
    match parse_json(&metrics_json) {
        Ok(doc) => {
            for section in ["counters", "gauges", "histograms"] {
                if doc.get(section).is_none() {
                    eprintln!("INVALID: metrics JSON missing \"{section}\" section");
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("INVALID: metrics JSON does not parse: {e}");
            failures += 1;
        }
    }
    for name in REQUIRED_METRICS {
        if !metrics_json.contains(&format!("\"{name}\"")) {
            eprintln!("INVALID: metrics JSON missing metric \"{name}\"");
            failures += 1;
        }
    }

    let profile_json = report.profile.to_json();
    if let Err(e) = parse_json(&profile_json) {
        eprintln!("INVALID: profile JSON does not parse: {e}");
        failures += 1;
    }
    for key in REQUIRED_PROFILE_KEYS {
        if !profile_json.contains(key) {
            eprintln!("INVALID: profile JSON missing key {key}");
            failures += 1;
        }
    }

    // --- Batch: exact nearest-rank latency percentiles. ---
    let workloads: Vec<_> = [Pattern::A, Pattern::D, Pattern::E, Pattern::A]
        .iter()
        .enumerate()
        .map(|(i, p)| p.build(1 << 14, 0xC2050 + i as u64))
        .collect();
    let bindings: Vec<Vec<(&str, &Relation)>> = workloads.iter().map(|w| w.bindings()).collect();
    let queries: Vec<BatchQuery<'_>> = workloads
        .iter()
        .zip(&bindings)
        .map(|(w, b)| BatchQuery {
            name: &w.name,
            plan: &w.plan,
            bindings: b,
        })
        .collect();
    let mut batch_dev = Device::new(DeviceConfig::fermi_c2050());
    let batch =
        execute_batch(&queries, &mut batch_dev, &WeaverConfig::default()).expect("batch executes");

    println!("== Batch latency percentiles (4 queries) ==");
    println!(
        "  p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms   makespan {:.3} ms",
        batch.latency_p50_seconds * 1e3,
        batch.latency_p95_seconds * 1e3,
        batch.latency_p99_seconds * 1e3,
        batch.makespan_seconds * 1e3
    );
    for (engine, util) in &batch.engine_utilization {
        println!("  engine {engine}: {:.0}% busy", util * 100.0);
    }
    let monotone = batch.latency_p50_seconds <= batch.latency_p95_seconds
        && batch.latency_p95_seconds <= batch.latency_p99_seconds;
    if !monotone || batch.latency_p99_seconds <= 0.0 {
        eprintln!("INVALID: batch percentiles not monotone positive");
        failures += 1;
    }
    if batch.engine_utilization.is_empty() {
        eprintln!("INVALID: batch reported no engine utilization");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("\n{failures} observability check(s) failed");
        std::process::exit(1);
    }
    println!("\nall observability schema checks passed");
}
