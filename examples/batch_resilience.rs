//! CI gate for fault-isolated batch execution.
//!
//! Two halves, both of which exit non-zero on failure so CI can gate on
//! this example:
//!
//! 1. **Taxonomy demo** — a seeded four-query batch on a tiny device with
//!    one scripted transient fault, one unbound binding and one whale that
//!    cannot fit a solo wave. The batch must complete with per-query
//!    outcomes covering the whole taxonomy (Completed / Retried /
//!    Degraded / Failed) — no all-or-nothing abort — with every survivor's
//!    outputs byte-identical to the fault-free run, the trace reconciled
//!    and no device memory leaked.
//! 2. **Bench JSON schema check** — re-parses
//!    `bench_results/BENCH_batch_resilience.json` (hand-rolled JSON, so a
//!    writer bug shows up as a syntax error here), verifies the keys the
//!    regression gate consumes, and checks each row's outcome taxonomy
//!    sums to its query count.
//!
//! ```bash
//! cargo run -p kw-examples --example batch_resilience [path/to/file.json]
//! ```

use kw_core::{execute_batch, BatchQuery, QueryOutcome, QueryPlan, WeaverConfig};
use kw_gpu_sim::{
    parse_json, validate_json, Device, DeviceConfig, FaultConfig, FaultKind, JsonValue,
    ScriptedFault,
};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Relation, Value};

/// Keys the bench_regression gate and EXPERIMENTS.md consume.
const REQUIRED_KEYS: [&str; 11] = [
    "\"experiment\"",
    "\"rows\"",
    "\"fault_rate\"",
    "\"waves\"",
    "\"completed\"",
    "\"retried\"",
    "\"degraded\"",
    "\"quarantined\"",
    "\"goodput_qps\"",
    "\"makespan_seconds\"",
    "\"latency_p99_seconds\"",
];

/// A SELECT chain of `depth` steps over a 4-attribute u32 input.
fn chain(input: &Relation, depth: usize) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let mut cur = plan.add_input("t", input.schema().clone());
    for a in 0..depth {
        cur = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(a % 4, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[cur],
            )
            .expect("chain type-checks");
    }
    plan.mark_output(cur);
    plan
}

fn outcome_label(o: &QueryOutcome) -> String {
    format!("{o}")
}

/// Run the seeded demo batch; returns the number of failures.
fn taxonomy_demo() -> u32 {
    let mut failures = 0;
    let small_a = gen::micro_input(20_000, 61);
    let small_b = gen::micro_input(20_000, 62);
    let whale_in = gen::micro_input(120_000, 63);
    let plan_a = chain(&small_a, 2);
    let plan_b = chain(&small_b, 3);
    let whale_plan = chain(&whale_in, 2);
    let (ba, bb, bw) = ([("t", &small_a)], [("t", &small_b)], [("t", &whale_in)]);
    let bad = [("wrong_name", &small_b)];
    let queries = [
        BatchQuery {
            name: "struck",
            plan: &plan_a,
            bindings: &ba,
        },
        BatchQuery {
            name: "steady",
            plan: &plan_b,
            bindings: &bb,
        },
        BatchQuery {
            name: "whale",
            plan: &whale_plan,
            bindings: &bw,
        },
        BatchQuery {
            name: "unbound",
            plan: &plan_b,
            bindings: &bad,
        },
    ];

    // Fault-free reference on an identical device.
    let mut clean_dev = Device::new(DeviceConfig::tiny());
    let clean = execute_batch(&queries, &mut clean_dev, &WeaverConfig::default())
        .expect("batches never abort wholesale");

    // Faulted run: one scripted transient fault on the first shared-device
    // transfer — the first wave upload — plus the structural faults above.
    let mut dev = Device::new(DeviceConfig::tiny());
    dev.inject_faults(FaultConfig::scripted(vec![ScriptedFault {
        kind: FaultKind::Transfer,
        attempt: 0,
    }]));
    let batch = match execute_batch(&queries, &mut dev, &WeaverConfig::default()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("INVALID: faulted batch aborted wholesale: {e}");
            return 1;
        }
    };

    println!("Seeded batch on DeviceConfig::tiny() with one scripted transfer fault:");
    println!("  waves issued: {}", batch.waves);
    for q in &batch.queries {
        println!(
            "  {:<8} wave={:<6} retries={} backoff={:.4} ms  {}",
            q.name,
            q.wave.map_or("ladder".into(), |w| w.to_string()),
            q.retries,
            q.backoff_seconds * 1e3,
            outcome_label(&q.outcome)
        );
    }

    // The full taxonomy must appear, one query each.
    type OutcomePred = fn(&QueryOutcome) -> bool;
    let expect: [(&str, OutcomePred); 4] = [
        ("retried", |o| matches!(o, QueryOutcome::Retried)),
        ("degraded", |o| matches!(o, QueryOutcome::Degraded { .. })),
        ("failed", |o| matches!(o, QueryOutcome::Failed { .. })),
        ("completed", |o| matches!(o, QueryOutcome::Completed)),
    ];
    for (name, pred) in expect {
        let count = batch.queries.iter().filter(|q| pred(&q.outcome)).count();
        if count != 1 {
            eprintln!("INVALID: expected exactly one {name} query, found {count}");
            failures += 1;
        }
    }

    // Survivors must match the fault-free run byte-for-byte.
    for (f, c) in batch.queries.iter().zip(&clean.queries) {
        if f.outcome.is_success() && f.outputs != c.outputs {
            eprintln!("INVALID: survivor {} diverged from fault-free run", f.name);
            failures += 1;
        }
        if !f.outcome.is_success() && !f.outputs.is_empty() {
            eprintln!("INVALID: quarantined {} kept outputs", f.name);
            failures += 1;
        }
    }
    if batch.serialized_seconds + 1e-15 < batch.makespan_seconds {
        eprintln!(
            "INVALID: serialized {} fell below makespan {}",
            batch.serialized_seconds, batch.makespan_seconds
        );
        failures += 1;
    }
    if batch.goodput_qps >= batch.throughput_qps {
        eprintln!("INVALID: goodput must trail throughput when a query is quarantined");
        failures += 1;
    }
    if dev.memory().in_use() != 0 {
        eprintln!(
            "INVALID: batch leaked {} device bytes",
            dev.memory().in_use()
        );
        failures += 1;
    }
    if let Err(e) = kw_gpu_sim::reconcile(dev.spans(), dev.stats()) {
        eprintln!("INVALID: faulted batch trace does not reconcile: {e}");
        failures += 1;
    }
    if failures == 0 {
        println!("  taxonomy, survivor byte-identity, reconciliation: OK\n");
    }
    failures
}

/// Validate the campaign's JSON document; returns the number of failures.
fn check_json(path: &str) -> u32 {
    let mut failures = 0;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("INVALID: cannot read {path}: {e}");
            eprintln!("(run `cargo run -p kw-bench --bin paper_tables -- batch_resilience` first)");
            return 1;
        }
    };
    match validate_json(&text) {
        Ok(()) => println!("{path}: well-formed JSON ({} bytes)", text.len()),
        Err(e) => {
            eprintln!("INVALID: {path} does not parse: {e}");
            failures += 1;
        }
    }
    for key in REQUIRED_KEYS {
        if !text.contains(key) {
            eprintln!("INVALID: {path} is missing required key {key}");
            failures += 1;
        }
    }

    // Outcome taxonomy must account for every query in every row.
    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(_) => return failures.max(1),
    };
    let Some(JsonValue::Array(rows)) = doc.get("rows") else {
        eprintln!("INVALID: {path} has no rows array");
        return failures + 1;
    };
    let num = |row: &JsonValue, key: &str| -> Option<f64> {
        match row.get(key) {
            Some(JsonValue::Number(v)) => Some(*v),
            _ => None,
        }
    };
    for (i, row) in rows.iter().enumerate() {
        let parts: Option<Vec<f64>> = ["completed", "retried", "degraded", "quarantined"]
            .iter()
            .map(|k| num(row, k))
            .collect();
        let (Some(parts), Some(queries)) = (parts, num(row, "queries")) else {
            eprintln!("INVALID: rows[{i}] is missing outcome counts");
            failures += 1;
            continue;
        };
        if parts.iter().sum::<f64>() != queries {
            eprintln!(
                "INVALID: rows[{i}] outcome taxonomy sums to {} for {} queries",
                parts.iter().sum::<f64>(),
                queries
            );
            failures += 1;
        }
        match num(row, "goodput_qps") {
            Some(g) if g > 0.0 => {}
            _ => {
                eprintln!("INVALID: rows[{i}] goodput must be positive");
                failures += 1;
            }
        }
        match num(row, "waves") {
            Some(w) if w >= 1.0 => {}
            _ => {
                eprintln!("INVALID: rows[{i}] must issue at least one wave");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "{path}: all {} required keys present, {} rows taxonomy-consistent",
            REQUIRED_KEYS.len(),
            rows.len()
        );
    }
    failures
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_batch_resilience.json".into());
    let failures = taxonomy_demo() + check_json(&path);
    if failures > 0 {
        std::process::exit(1);
    }
}
