//! Structured execution tracing — export a fused vs unfused TPC-H Q1 run
//! as Chrome trace-event JSON and a per-operator summary.
//!
//! Every kernel launch, PCIe transfer, allocation and injected fault the
//! simulator performs becomes one span carrying the operator provenance the
//! executor pushed and the exact `SimStats` delta it charged. This example
//! runs Q1 both ways, checks the reconciliation invariant (per-span deltas
//! sum to the aggregate counters), validates the emitted JSON against the
//! trace-event schema, and writes the files for Perfetto.
//!
//! ```bash
//! cargo run --release -p kw-examples --example trace [-- <output-dir>]
//! # then open <output-dir>/q1.fused.trace.json in https://ui.perfetto.dev
//! ```
//!
//! Exits non-zero if any trace fails reconciliation or schema validation,
//! which is how `ci.sh` uses it.

use kw_core::WeaverConfig;
use kw_gpu_sim::{
    chrome_trace_json, operator_summary, reconcile, summary_table, validate_chrome_json, Device,
    DeviceConfig, SpanKind, TraceSink,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "traces".into());
    let sink = TraceSink::new(&dir)?;
    let workload = kw_tpch::q1(8.0, 7);
    println!("lineitem: {} rows", workload.data[0].1.len());

    let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
    let fused = workload.run(&mut fused_dev, &WeaverConfig::default())?;
    let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
    let base = workload.run(&mut base_dev, &WeaverConfig::default().baseline())?;
    assert_eq!(fused.outputs, base.outputs, "tracing changed the answer");

    let mut paths = Vec::new();
    for (name, dev, report) in [
        ("q1.fused", &fused_dev, &fused),
        ("q1.baseline", &base_dev, &base),
    ] {
        // The invariant TraceSink::export also enforces, spelled out.
        reconcile(dev.spans(), dev.stats())
            .map_err(|e| format!("{name}: trace does not reconcile: {e}"))?;
        let json = chrome_trace_json(dev.spans(), dev.config().clock_ghz);
        let events = validate_chrome_json(&json)
            .map_err(|e| format!("{name}: invalid Chrome trace JSON: {e}"))?;

        let kernels = dev
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .count();
        println!(
            "\n{name}: {} spans ({kernels} kernels), {events} trace events, \
             {} global bytes",
            dev.spans().len(),
            report.stats.global_bytes()
        );
        print!("{}", summary_table(&operator_summary(dev.spans())));
        paths.push(sink.export(name, dev)?);
    }

    // Fusion, visible in the trace itself: fewer kernel spans, less global
    // memory moved.
    let count = |d: &Device| {
        d.spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .count()
    };
    assert!(
        count(&fused_dev) < count(&base_dev),
        "fused trace should contain fewer kernel spans"
    );
    assert!(
        fused.stats.global_bytes() < base.stats.global_bytes(),
        "fused trace should move less global memory"
    );

    println!();
    for p in paths {
        println!("wrote {}", p.display());
    }
    println!("open the .trace.json files in https://ui.perfetto.dev");
    Ok(())
}
