//! CI gate for the scheduler benchmark's machine-readable output.
//!
//! `paper_tables -- scheduler` writes `bench_results/BENCH_scheduler.json`;
//! this check re-parses it (hand-rolled JSON, so a writer bug shows up as
//! a syntax error here) and verifies the keys downstream tooling consumes
//! are present. Exits non-zero on any failure so CI can gate on it.
//!
//! ```bash
//! cargo run -p kw-examples --example bench_json_check [path/to/file.json]
//! ```

use kw_gpu_sim::validate_json;

const REQUIRED_KEYS: [&str; 10] = [
    "\"experiment\"",
    "\"rows\"",
    "\"batched_fused_seconds\"",
    "\"serial_fused_seconds\"",
    "\"throughput_qps\"",
    "\"speedup_vs_serial\"",
    "\"latency_p50_seconds\"",
    "\"latency_p95_seconds\"",
    "\"latency_p99_seconds\"",
    "\"engine_utilization\"",
];

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_scheduler.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("INVALID: cannot read {path}: {e}");
            eprintln!("(run `cargo run -p kw-bench --bin paper_tables -- scheduler` first)");
            std::process::exit(1);
        }
    };

    let mut failures = 0;
    match validate_json(&text) {
        Ok(()) => println!("{path}: well-formed JSON ({} bytes)", text.len()),
        Err(e) => {
            eprintln!("INVALID: {path} does not parse: {e}");
            failures += 1;
        }
    }
    for key in REQUIRED_KEYS {
        if !text.contains(key) {
            eprintln!("INVALID: {path} is missing required key {key}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("{path}: all {} required keys present", REQUIRED_KEYS.len());
}
