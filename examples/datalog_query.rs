//! Compile a Datalog query — the paper's front-end language — into a query
//! plan, fuse it and execute it.
//!
//! ```bash
//! cargo run --release -p kw-examples --example datalog_query
//! ```

use kw_core::{compile, execute_plan, WeaverConfig};
use kw_datalog::compile_datalog;
use kw_gpu_sim::{Device, DeviceConfig};
use kw_relational::gen;

const QUERY: &str = "
    % Two tables of 16-byte tuples keyed on the first attribute.
    .input items(*u32, u32, u32, u32).
    .input prices(*u32, u32, u32, u32).

    % Cheap items: a filter chain (fusible, thread-dependent).
    cheap(K, A, B)   :- items(K, A, B, _), A < 2147483647, B < 1073741824.

    % Join them with their price rows (CTA-dependent, still fusible).
    priced(K, A, P)  :- cheap(K, A, _), prices(K, P, _, _).

    .output priced.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source program:\n{QUERY}");

    let translated = compile_datalog(QUERY)?;
    println!("query plan:\n{}", translated.plan.describe());

    let config = WeaverConfig::default();
    let compiled = compile(&translated.plan, &config)?;
    println!(
        "fusion sets chosen by Algorithm 2: {:?}",
        compiled.fusion_sets
    );
    for step in &compiled.steps {
        println!(
            "  step: {} ({} -> {} relations){}",
            step.op.label,
            step.inputs.len(),
            step.outputs.len(),
            if step.fused { "  [FUSED]" } else { "" }
        );
    }

    // Keys overlap on ~60% of rows so the join has matches.
    let (items, prices) = gen::join_inputs(200_000, 4, 0.6, 1);
    let mut device = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(
        &translated.plan,
        &[("items", &items), ("prices", &prices)],
        &mut device,
        &config,
    )?;

    let (name, node) = &translated.outputs[0];
    let result = &report.outputs[node];
    println!(
        "\n{name}: {} tuples in {:.3} ms of simulated GPU time",
        result.len(),
        report.gpu_seconds * 1e3
    );
    for i in 0..result.len().min(5) {
        println!("  {:?}", result.to_rows()[i]);
    }
    Ok(())
}
