//! CI gate for the open-loop service campaign's JSON export.
//!
//! Re-parses `bench_results/BENCH_service.json` (hand-rolled JSON, so a
//! writer bug shows up as a syntax error here), verifies the keys the
//! regression gate consumes, and checks the campaign's accounting
//! invariants per config and row:
//!
//! * percentile monotonicity: `total_p50 <= total_p95 <= total_p99`, and
//!   the component p99s never exceed the total p99;
//! * arrival accounting: `completed + failed == arrivals` and
//!   `cache_hits + cache_misses == arrivals` (exactly one cache lookup
//!   per arrival) for both variants;
//! * the cached variant hits (`cache_hits > 0`), the disabled baseline
//!   never does (`cache_hits == 0`), and `p99_gain > 1`;
//! * percentiles of an all-failed run are explicit `null`s, never fake
//!   numbers.
//!
//! ```bash
//! cargo run -p kw-examples --example service_check [path/to/file.json]
//! ```

use kw_gpu_sim::{parse_json, validate_json, JsonValue};

/// Keys the bench_regression gate and EXPERIMENTS.md consume.
const REQUIRED_KEYS: [&str; 12] = [
    "\"experiment\"",
    "\"arrivals\"",
    "\"seed\"",
    "\"configs\"",
    "\"device\"",
    "\"slo_p99_seconds\"",
    "\"saturation_offered_qps\"",
    "\"offered_qps\"",
    "\"p99_gain\"",
    "\"cached\"",
    "\"uncached\"",
    "\"total_p99_seconds\"",
];

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(JsonValue::Number(x)) => Some(*x),
        _ => None,
    }
}

/// Check one variant object; returns failures found.
fn check_variant(label: &str, v: &JsonValue, arrivals: f64) -> u32 {
    let mut failures = 0;
    let completed = num(v, "completed");
    let failed = num(v, "failed");
    match (completed, failed) {
        (Some(c), Some(f)) if (c + f - arrivals).abs() < 0.5 => {}
        other => {
            eprintln!("INVALID: {label}: completed+failed must equal arrivals, got {other:?}");
            failures += 1;
        }
    }
    match (num(v, "cache_hits"), num(v, "cache_misses")) {
        (Some(h), Some(m)) if (h + m - arrivals).abs() < 0.5 => {}
        other => {
            eprintln!(
                "INVALID: {label}: cache_hits+cache_misses must equal arrivals \
                 (one lookup per arrival), got {other:?}"
            );
            failures += 1;
        }
    }
    let all_failed = completed == Some(0.0);
    for key in [
        "queueing_p99_seconds",
        "execution_p99_seconds",
        "total_p50_seconds",
        "total_p95_seconds",
        "total_p99_seconds",
    ] {
        match v.get(key) {
            Some(JsonValue::Null) if all_failed => {}
            Some(JsonValue::Number(x)) if !all_failed && x.is_finite() && *x >= 0.0 => {}
            other => {
                eprintln!(
                    "INVALID: {label}.{key}: expected {} got {other:?}",
                    if all_failed {
                        "explicit null (no successes)"
                    } else {
                        "a finite non-negative number"
                    }
                );
                failures += 1;
            }
        }
    }
    if !all_failed {
        let p50 = num(v, "total_p50_seconds").unwrap_or(f64::NAN);
        let p95 = num(v, "total_p95_seconds").unwrap_or(f64::NAN);
        let p99 = num(v, "total_p99_seconds").unwrap_or(f64::NAN);
        if !(p50 <= p95 && p95 <= p99) {
            eprintln!("INVALID: {label}: percentiles not monotone: {p50} / {p95} / {p99}");
            failures += 1;
        }
        for key in ["queueing_p99_seconds", "execution_p99_seconds"] {
            if let Some(comp) = num(v, key) {
                if comp > p99 + 1e-12 {
                    eprintln!("INVALID: {label}.{key} {comp} exceeds total p99 {p99}");
                    failures += 1;
                }
            }
        }
    }
    failures
}

fn check_json(path: &str) -> u32 {
    let mut failures = 0;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("INVALID: cannot read {path}: {e}");
            eprintln!("(run `cargo run -p kw-bench --bin paper_tables -- service` first)");
            return 1;
        }
    };
    match validate_json(&text) {
        Ok(()) => println!("{path}: well-formed JSON ({} bytes)", text.len()),
        Err(e) => {
            eprintln!("INVALID: {path} does not parse: {e}");
            failures += 1;
        }
    }
    for key in REQUIRED_KEYS {
        if !text.contains(key) {
            eprintln!("INVALID: {path} is missing required key {key}");
            failures += 1;
        }
    }

    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("INVALID: {path}: {e}");
            return failures.max(1);
        }
    };
    let arrivals = match num(&doc, "arrivals") {
        Some(a) if a > 0.0 => a,
        other => {
            eprintln!("INVALID: {path} needs a positive arrivals count, got {other:?}");
            return failures + 1;
        }
    };
    let Some(JsonValue::Array(configs)) = doc.get("configs") else {
        eprintln!("INVALID: {path} has no configs array");
        return failures + 1;
    };
    if configs.is_empty() {
        eprintln!("INVALID: {path} has an empty configs array");
        failures += 1;
    }
    let mut rows_checked = 0usize;
    for (c, cfg) in configs.iter().enumerate() {
        let device = match cfg.get("device") {
            Some(JsonValue::Str(s)) => s.clone(),
            other => {
                eprintln!("INVALID: configs[{c}] has no device name: {other:?}");
                failures += 1;
                format!("configs[{c}]")
            }
        };
        let slo = num(cfg, "slo_p99_seconds");
        if !slo.is_some_and(|s| s > 0.0 && s.is_finite()) {
            eprintln!("INVALID: {device}: slo_p99_seconds must be positive, got {slo:?}");
            failures += 1;
        }
        let Some(JsonValue::Array(rows)) = cfg.get("rows") else {
            eprintln!("INVALID: {device} has no rows array");
            failures += 1;
            continue;
        };
        if rows.is_empty() {
            eprintln!("INVALID: {device} has an empty rows array");
            failures += 1;
        }
        for (i, row) in rows.iter().enumerate() {
            rows_checked += 1;
            let label = format!("{device}.rows[{i}]");
            let (Some(cached), Some(uncached)) = (row.get("cached"), row.get("uncached")) else {
                eprintln!("INVALID: {label} needs cached and uncached variants");
                failures += 1;
                continue;
            };
            failures += check_variant(&format!("{label}.cached"), cached, arrivals);
            failures += check_variant(&format!("{label}.uncached"), uncached, arrivals);
            if num(cached, "cache_hits") == Some(0.0) {
                eprintln!("INVALID: {label}.cached never hit despite repeated shapes");
                failures += 1;
            }
            if num(uncached, "cache_hits") != Some(0.0) {
                eprintln!("INVALID: {label}.uncached hit a cache that should be disabled");
                failures += 1;
            }
            match row.get("p99_gain") {
                Some(JsonValue::Number(g)) if *g > 1.0 => {}
                Some(JsonValue::Null) => {} // an all-failed load has no gain to claim
                other => {
                    eprintln!("INVALID: {label}: p99_gain must exceed 1, got {other:?}");
                    failures += 1;
                }
            }
        }
        // The knee must be one of the swept loads (or 0 if all broke SLO).
        if let Some(knee) = num(cfg, "saturation_offered_qps") {
            let offered: Vec<f64> = rows.iter().filter_map(|r| num(r, "offered_qps")).collect();
            if knee != 0.0 && !offered.iter().any(|&o| (o - knee).abs() < 1e-9 * o.abs()) {
                eprintln!("INVALID: {device}: knee {knee} is not one of the swept loads");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "{path}: all {} required keys present, {} config(s), {rows_checked} rows \
             service-consistent",
            REQUIRED_KEYS.len(),
            configs.len()
        );
    }
    failures
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_results/BENCH_service.json".into());
    if check_json(&path) > 0 {
        std::process::exit(1);
    }
}
