//! Quickstart: build a query plan, let Kernel Weaver fuse it, and compare
//! against the unfused baseline on the simulated GPU.
//!
//! ```bash
//! cargo run --release -p kw-examples --example quickstart
//! ```

use kw_core::{execute_plan, QueryPlan, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A relation of one million 16-byte tuples (four u32 attributes),
    //    keyed on the first attribute — the paper's micro-benchmark shape.
    let input = gen::micro_input(1 << 20, 42);
    println!(
        "input: {} tuples, {} MiB",
        input.len(),
        input.byte_size() >> 20
    );

    // 2. A query plan: two 50%-selectivity filters then a projection
    //    (micro-benchmark pattern (a) with depth two).
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s1 = plan.add_op(
        RaOp::Select {
            pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
        },
        &[t],
    )?;
    let s2 = plan.add_op(
        RaOp::Select {
            pred: Predicate::cmp(2, CmpOp::Lt, Value::U32(u32::MAX / 2)),
        },
        &[s1],
    )?;
    let out = plan.add_op(
        RaOp::Project {
            attrs: vec![0, 3],
            key_arity: 1,
        },
        &[s2],
    )?;
    plan.mark_output(out);

    // 3. Execute with kernel fusion (the default) ...
    let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
    let fused = execute_plan(
        &plan,
        &[("t", &input)],
        &mut fused_dev,
        &WeaverConfig::default(),
    )?;

    // 4. ... and as the unfused primitive-library baseline.
    let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
    let base = execute_plan(
        &plan,
        &[("t", &input)],
        &mut base_dev,
        &WeaverConfig::default().baseline(),
    )?;

    assert_eq!(
        fused.outputs, base.outputs,
        "fusion must not change results"
    );

    println!("\n                    fused     baseline");
    println!(
        "operators       {:>9} {:>12}",
        fused.operator_count, base.operator_count
    );
    println!(
        "kernel launches {:>9} {:>12}",
        fused.stats.kernel_launches, base.stats.kernel_launches
    );
    println!(
        "GPU time        {:>8.3}ms {:>10.3}ms",
        fused.gpu_seconds * 1e3,
        base.gpu_seconds * 1e3
    );
    println!(
        "global traffic  {:>7}MiB {:>9}MiB",
        fused.stats.global_bytes() >> 20,
        base.stats.global_bytes() >> 20
    );
    println!(
        "\nkernel fusion speedup: {:.2}x",
        base.gpu_seconds / fused.gpu_seconds
    );
    println!(
        "result: {} tuples (identical with and without fusion)",
        fused.outputs[&out].len()
    );
    Ok(())
}
