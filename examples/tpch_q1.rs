//! TPC-H Q1 — the paper's arithmetic-centric query (Section 5.2).
//!
//! Shows the pricing-summary result table, the per-stage cost breakdown
//! (the SORT inside the grouped aggregation dominates, as in the paper),
//! and the fusion speedup on the remaining operators.
//!
//! ```bash
//! cargo run --release -p kw-examples --example tpch_q1
//! ```

use kw_core::WeaverConfig;
use kw_gpu_sim::{cycles_for_label, Device, DeviceConfig};
use kw_relational::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = kw_tpch::q1(16.0, 7);
    println!("lineitem: {} rows\n", workload.data[0].1.len());

    let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
    let fused = workload.run(&mut fused_dev, &WeaverConfig::default())?;
    let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
    let base = workload.run(&mut base_dev, &WeaverConfig::default().baseline())?;
    assert_eq!(fused.outputs, base.outputs);

    // The Q1 pricing summary.
    let result = fused.outputs.values().next().expect("one output");
    println!("rf ls |   sum_qty    sum_price     sum_disc_price   sum_charge      avg_qty  count");
    for row in result.to_rows() {
        let f = |v: &Value| v.as_f64();
        println!(
            "{:>2} {:>2} | {:>9.0} {:>12.0} {:>16.0} {:>14.0} {:>10.2} {:>6.0}",
            f(&row[0]),
            f(&row[1]),
            f(&row[2]),
            f(&row[3]),
            f(&row[4]),
            f(&row[5]),
            f(&row[6]),
            f(&row[9]),
        );
    }

    // Cost breakdown of the baseline: SORT dominates (paper: ~71%).
    let base_sort = cycles_for_label(base_dev.timeline(), "sort");
    let base_total = base.stats.gpu_cycles;
    println!(
        "\nbaseline: {} operators, {} kernels; SORT = {:.0}% of GPU cycles",
        base.operator_count,
        base.stats.kernel_launches,
        100.0 * base_sort as f64 / base_total as f64
    );
    let fused_sort = cycles_for_label(fused_dev.timeline(), "sort");
    println!(
        "fusion: overall {:.2}x speedup; {:.2}x on the non-SORT operators \
         (paper: 1.25x / 3.18x)",
        base_total as f64 / fused.stats.gpu_cycles as f64,
        (base_total - base_sort) as f64 / (fused.stats.gpu_cycles - fused_sort) as f64,
    );
    Ok(())
}
