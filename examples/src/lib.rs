//! Support crate for the Kernel Weaver examples.
//!
//! The runnable examples live alongside this manifest:
//!
//! ```bash
//! cargo run -p kw-examples --example quickstart
//! cargo run -p kw-examples --example datalog_query
//! cargo run -p kw-examples --example tpch_q1
//! cargo run -p kw-examples --example fusion_inspector
//! cargo run -p kw-examples --example large_inputs
//! ```
