//! Inspect Kernel Weaver's compilation pipeline: dependence classes,
//! Algorithm 1 candidates, Algorithm 2 selection, and the woven kernel IR
//! (the analogue of the paper's Figure 15 generated-code listing).
//!
//! ```bash
//! cargo run --release -p kw-examples --example fusion_inspector
//! ```

use kw_core::{
    compile, find_candidates, select_fusions, weave, FusionOptions, QueryPlan, ResourceBudget,
    WeaverConfig,
};
use kw_kernel_ir::{
    estimate_resources, infer_schemas, optimize, OptLevel, DEFAULT_THREADS_PER_CTA,
};
use kw_primitives::{consumer_class, RaOp};
use kw_relational::{CmpOp, Predicate, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 9's running example: two selected tables joined, bounded by a
    // SORT consumer.
    let mut plan = QueryPlan::new();
    let s4 = Schema::uniform_u32(4);
    let x = plan.add_input("x", s4.clone());
    let y = plan.add_input("y", s4);
    let sx = plan.add_op(
        RaOp::Select {
            pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(1 << 30)),
        },
        &[x],
    )?;
    let sy = plan.add_op(
        RaOp::Select {
            pred: Predicate::cmp(2, CmpOp::Gt, Value::U32(1 << 28)),
        },
        &[y],
    )?;
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[sx, sy])?;
    let sorted = plan.add_op(RaOp::Sort { attrs: vec![1] }, &[j])?;
    plan.mark_output(sorted);

    println!(
        "== query plan (RA dependence graph) ==\n{}",
        plan.describe()
    );

    println!("== dependence classes ==");
    for (id, op, _) in plan.operator_nodes() {
        println!("  {id}: {op} -> {:?} dependence", consumer_class(op));
    }

    println!("\n== Algorithm 1: fusion candidates ==");
    let groups = find_candidates(&plan, FusionOptions::default());
    for g in &groups {
        println!("  candidate group: {g:?} (bounded by the SORT)");
    }

    println!("\n== Algorithm 2: greedy selection under resource budgets ==");
    let budget = ResourceBudget::default();
    for g in &groups {
        let sets = select_fusions(&plan, g, budget, DEFAULT_THREADS_PER_CTA)?;
        println!("  budget {budget:?}\n  fusion sets: {sets:?}");
    }

    println!("\n== woven kernel IR (Figure 15 analogue) ==");
    let woven = weave(&plan, &groups[0], DEFAULT_THREADS_PER_CTA)?;
    let (optimized, stats) = optimize(&woven.op, OptLevel::O3)?;
    println!("{}", optimized.disassemble());
    println!("optimizer: {stats:?}");

    let inferred = infer_schemas(&optimized)?;
    let res = estimate_resources(&optimized, &inferred, OptLevel::O3)?;
    println!(
        "estimated resources: {} registers/thread, {} B shared/CTA",
        res.registers_per_thread, res.shared_per_cta
    );

    let compiled = compile(&plan, &WeaverConfig::default())?;
    println!("\n== Graphviz (render with `dot -Tpng`) ==");
    println!("{}", kw_core::plan_to_dot(&plan, Some(&compiled)));

    println!("== final schedule ==");
    for step in &compiled.steps {
        println!(
            "  {}{}",
            step.op.label,
            if step.fused { "  [FUSED]" } else { "" }
        );
    }
    Ok(())
}
