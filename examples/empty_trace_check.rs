//! Regression check for the Chrome trace writer's edge cases.
//!
//! An empty span log must still serialize to *well-formed* JSON (the
//! metadata lines used to leave a trailing comma, which Perfetto rejects).
//! The validator still reports an empty trace as "no events" — that is the
//! correct semantic verdict, not a failure. A one-span trace must validate
//! outright. Exits non-zero on any INVALID outcome so CI can gate on it.

use kw_gpu_sim::{chrome_trace_json, validate_chrome_json, Device, DeviceConfig, Direction};

fn main() {
    let mut failures = 0;

    // Case 1: empty span list — must be parseable JSON; "no events" is the
    // expected (and only acceptable) validator complaint.
    let empty = chrome_trace_json(&[], 1.15);
    match validate_chrome_json(&empty) {
        Ok(n) => println!("empty trace: unexpectedly valid with {n} events"),
        Err(e) if e == "trace contains no events" => {
            println!("empty trace: well-formed, {e} (expected)");
        }
        Err(e) => {
            eprintln!("INVALID: empty trace is not well-formed JSON: {e}");
            failures += 1;
        }
    }

    // Case 2: a single real span must validate end to end.
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    dev.transfer(Direction::HostToDevice, 1 << 20)
        .expect("transfer on a fresh device");
    let one = chrome_trace_json(dev.spans(), dev.config().clock_ghz);
    match validate_chrome_json(&one) {
        Ok(n) => println!("one-span trace: valid, {n} event(s)"),
        Err(e) => {
            eprintln!("INVALID: one-span trace failed validation: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
