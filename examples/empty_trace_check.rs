fn main() {
    let json = kw_gpu_sim::chrome_trace_json(&[], 1.15);
    println!("--- json ---\n{json}--- end ---");
    match kw_gpu_sim::validate_chrome_json(&json) {
        Ok(n) => println!("valid, {n} events"),
        Err(e) => println!("INVALID: {e}"),
    }
}
