//! The Figure 21 scenario: inputs too large for GPU residency, so every
//! unfused operator stages its result over PCIe — kernel fusion removes
//! those round trips.
//!
//! ```bash
//! cargo run --release -p kw-examples --example large_inputs
//! ```

use kw_core::{ExecMode, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_tpch::Pattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let staged = WeaverConfig {
        mode: ExecMode::Staged,
        ..WeaverConfig::default()
    };

    println!("pattern                          GPU      PCIe   overall   PCIe bytes saved");
    for pattern in Pattern::all() {
        let workload = pattern.build(1 << 20, 99);

        let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
        let fused = workload.run(&mut fused_dev, &staged)?;
        let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
        let base = workload.run(&mut base_dev, &staged.baseline())?;
        assert_eq!(fused.outputs, base.outputs);

        println!(
            "{} {:<28} {:>5.2}x  {:>6.2}x  {:>6.2}x   {:>10} MiB",
            pattern.label(),
            pattern.description(),
            base.gpu_seconds / fused.gpu_seconds,
            base.pcie_seconds / fused.pcie_seconds,
            // The paper's "overall" is the serialized compute + transfer
            // cost; staged total_seconds now measures streamed overlap.
            base.serialized_seconds / fused.serialized_seconds,
            (base
                .stats
                .pcie_bytes()
                .saturating_sub(fused.stats.pcie_bytes()))
                >> 20,
        );
    }
    println!(
        "\n(paper averages: 2.91x GPU, 2.08x PCIe, 1.98x overall; \
         pattern (d) gains nothing on PCIe)"
    );
    Ok(())
}
