#!/usr/bin/env bash
# Local CI: formatting, lints (warnings are errors), full test suite.
# Everything runs offline against the vendored third_party/ crates.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q

echo "CI OK"
