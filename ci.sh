#!/usr/bin/env bash
# Local CI: formatting, lints (warnings are errors), full test suite.
# Everything runs offline against the vendored third_party/ crates.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q

echo "== trace schema validation (examples/trace.rs)"
# Runs TPC-H Q1 fused + unfused, reconciles per-span deltas against the
# aggregate SimStats and validates the exported Chrome trace JSON; the
# example exits non-zero on any schema or reconciliation failure.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q -p kw-examples --example trace -- "$trace_dir" > /dev/null
for f in "$trace_dir"/q1.fused.trace.json "$trace_dir"/q1.baseline.trace.json; do
    [ -s "$f" ] || { echo "missing trace export: $f" >&2; exit 1; }
done

echo "CI OK"
