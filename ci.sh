#!/usr/bin/env bash
# Local CI: formatting, lints (warnings are errors), full test suite.
# Everything runs offline against the vendored third_party/ crates.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
# The tier-1 gate builds release before testing; catching release-only
# breakage (e.g. debug_assert-guarded code) locally keeps CI honest.
cargo build --release --workspace

echo "== cargo test -q"
cargo test --workspace -q

echo "== trace schema validation (examples/trace.rs)"
# Runs TPC-H Q1 fused + unfused, reconciles per-span deltas against the
# aggregate SimStats and validates the exported Chrome trace JSON; the
# example exits non-zero on any schema or reconciliation failure.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q -p kw-examples --example trace -- "$trace_dir" > /dev/null
for f in "$trace_dir"/q1.fused.trace.json "$trace_dir"/q1.baseline.trace.json; do
    [ -s "$f" ] || { echo "missing trace export: $f" >&2; exit 1; }
done

echo "== trace writer edge cases (examples/empty_trace_check.rs)"
# Empty span lists must serialize to well-formed JSON (regression: trailing
# comma) and a one-span trace must validate; exits non-zero on INVALID.
cargo run -q -p kw-examples --example empty_trace_check

echo "== scheduler benchmark JSON (paper_tables -- scheduler)"
# Runs the multi-query batch experiment into a scratch dir, then re-parses
# bench_results/BENCH_scheduler.json and checks its required keys; the
# section itself asserts batched-fused < batched-unfused < serial-fused.
bench_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$bench_dir"' EXIT
cargo run -q --release -p kw-bench --bin paper_tables -- scheduler profile batch_resilience out_of_core service arena --csv "$bench_dir" > /dev/null
cargo run -q -p kw-examples --example bench_json_check -- "$bench_dir/BENCH_scheduler.json"

echo "== batch resilience gate (examples/batch_resilience.rs)"
# Runs a seeded batch whose outcomes must cover the whole taxonomy
# (Completed / Retried / Degraded / Failed) with survivors byte-identical
# to the fault-free run, then schema-validates the campaign's
# BENCH_batch_resilience.json; exits non-zero on any INVALID line.
cargo run -q -p kw-examples --example batch_resilience -- \
    "$bench_dir/BENCH_batch_resilience.json" > /dev/null

echo "== out-of-core chunking gate (examples/out_of_core_check.rs)"
# Schema-validates the chunk-strategy campaign's BENCH_out_of_core.json:
# every row must be genuinely out of core (device < inputs), chunked under
# a named strategy, with fusion_gain = unfused/fused; exits non-zero on
# any INVALID line.
cargo run -q -p kw-examples --example out_of_core_check -- \
    "$bench_dir/BENCH_out_of_core.json" > /dev/null

echo "== open-loop service gate (examples/service_check.rs)"
# Schema-validates the service campaign's BENCH_service.json: percentile
# monotonicity, completed+failed == arrivals, one cache lookup per arrival
# (hits + misses == arrivals), cached variant hits while the disabled
# baseline never does, p99_gain > 1, explicit nulls for all-failed runs;
# exits non-zero on any INVALID line.
cargo run -q -p kw-examples --example service_check -- \
    "$bench_dir/BENCH_service.json" > /dev/null

echo "== scratch arena gate (examples/arena_check.rs)"
# Live-checks the arena contract on patterns (a)-(d), fused and unfused:
# exactly one Alloc/Free span per plan, high-water <= reservation, zero
# spills, tracker peak bit-equal to the admission reservation; then
# schema-validates the campaign's BENCH_arena.json row by row; exits
# non-zero on any INVALID line.
cargo run -q --release -p kw-examples --example arena_check -- \
    "$bench_dir/BENCH_arena.json" > /dev/null

echo "== observability schema validation (examples/profile.rs)"
# Prints the bottleneck profile and Prometheus export for a staged run and
# validates the metrics-registry JSON and profile JSON schemas plus the
# batch latency percentiles; exits non-zero on any INVALID line.
cargo run -q --release -p kw-examples --example profile > /dev/null

echo "== bench regression gate (bench_regression vs bench_results/baselines)"
# Diffs the freshly generated BENCH_*.json against the committed baselines
# with per-metric direction-aware tolerances (times may not rise, speedups
# and utilizations may not fall, classifications must match exactly).
cargo run -q --release -p kw-bench --bin bench_regression -- \
    --baseline-dir bench_results/baselines --fresh-dir "$bench_dir"

echo "CI OK"
