//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so this workspace vendors
//! the *small, deterministic* subset of the `rand 0.8` API it actually uses:
//! [`StdRng`] (seeded via [`SeedableRng::seed_from_u64`]) and the [`Rng`]
//! methods `gen`, `gen_range` (half-open ranges) and `gen_bool`.
//!
//! The generator is splitmix64, which passes the statistical bar these
//! workloads need (uniform synthetic data); streams differ from upstream
//! `rand`, so seeds reproduce results within this workspace only.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a uniform value can be drawn for via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// A uniform draw in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 explicit mantissa bits keep the draw uniform over representables.
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Types [`Rng::gen_range`] can sample over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The user-facing random-value API.
pub trait Rng: RngCore {
    /// A uniform value of `T` over its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// A uniform value in the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stub has a single generator quality tier.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(1.5f32..2.5);
            assert!((1.5..2.5).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn values_are_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(r.gen_range(0u32..1024));
        }
        assert!(seen.len() > 48, "{}", seen.len());
    }
}
