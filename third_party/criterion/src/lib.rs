//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-io access, so bench targets link this
//! minimal shim instead. It keeps the familiar API (`criterion_group!`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`) but runs each
//! benchmark body exactly once and prints the wall time — enough for
//! `cargo test`/`cargo bench` to smoke-test every bench target without
//! statistical sampling. Use `kw-bench`'s `paper_tables` binary for the real
//! (simulated-clock) measurements.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs the body once.
pub struct Bencher {
    elapsed: Option<std::time::Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        let out = body();
        self.elapsed = Some(start.elapsed());
        drop(out);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub always runs a single iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed: None };
        body(&mut b, input);
        match b.elapsed {
            Some(d) => eprintln!(
                "bench {}/{}: {:.3} ms (1 iter)",
                self.name,
                id.label,
                d.as_secs_f64() * 1e3
            ),
            None => eprintln!("bench {}/{}: no iter() call", self.name, id.label),
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed: None };
        body(&mut b);
        match b.elapsed {
            Some(d) => eprintln!(
                "bench {}/{}: {:.3} ms (1 iter)",
                self.name,
                id,
                d.as_secs_f64() * 1e3
            ),
            None => eprintln!("bench {}/{}: no iter() call", self.name, id),
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// Opaque use of a value, preventing the optimizer from deleting the work.
pub fn black_box<T>(v: T) -> T {
    std::hint::black_box(v)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies_once() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 1), &41, |b, input| {
                b.iter(|| {
                    runs += 1;
                    black_box(*input + 1)
                })
            });
        group.finish();
        assert_eq!(runs, 1);
    }
}
