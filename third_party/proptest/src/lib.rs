//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this vendors the subset
//! of the proptest API the workspace's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`boxed`, `any`, `Just`, `prop_oneof!`,
//! ranges, tuples, `collection::vec`, `sample::subsequence`, and a
//! character-class string strategy.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Each test case is generated from a seed derived from the
//! test's module path, name, and case index, so failures are reproducible by
//! rerunning the same test binary — the printed case index identifies the
//! failing input deterministically.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured by this stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream seeded from (test path, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index, so each test
            // and each case get independent streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[lo, hi)`. Panics on an empty range.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range {lo}..{hi}");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }

        /// A uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values. Unlike upstream proptest there is no
    /// value tree / shrinking: `generate` draws a single value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// A type-erased strategy, cheaply clonable.
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives; backs `prop_oneof!`.
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.usize_in(0, self.branches.len());
            self.branches[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// `&str` character-class patterns like `"[ -~\n]{0,200}"`.
    ///
    /// Only the `[class]{lo,hi}` shape is supported; anything else panics so
    /// misuse is caught loudly rather than silently generating wrong data.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_char_class(self);
            let len = rng.usize_in(lo, hi + 1);
            (0..len)
                .map(|_| chars[rng.usize_in(0, chars.len())])
                .collect()
        }
    }

    /// Reject a pattern this stub cannot generate for.
    fn unsupported(pattern: &str) -> ! {
        panic!(
            "stub proptest only supports \"[class]{{lo,hi}}\" string strategies, got {pattern:?}"
        )
    }

    /// Parse `[class]{lo,hi}` into (alphabet, lo, hi-inclusive).
    fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| unsupported(pattern));
        let (class, counts) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
        let counts = counts
            .strip_prefix('{')
            .and_then(|c| c.strip_suffix('}'))
            .unwrap_or_else(|| unsupported(pattern));
        let (lo, hi) = counts
            .split_once(',')
            .unwrap_or_else(|| unsupported(pattern));
        let lo: usize = lo.trim().parse().unwrap_or_else(|_| unsupported(pattern));
        let hi: usize = hi.trim().parse().unwrap_or_else(|_| unsupported(pattern));

        let mut chars: Vec<char> = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            let c = if c == '\\' {
                match it.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('\\') => '\\',
                    Some(other) => other,
                    None => unsupported(pattern),
                }
            } else {
                c
            };
            if it.peek() == Some(&'-') {
                let mut probe = it.clone();
                probe.next();
                if let Some(&end) = probe.peek() {
                    if end != ']' {
                        it = probe;
                        it.next();
                        for v in (c as u32)..=(end as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                chars.push(ch);
                            }
                        }
                        continue;
                    }
                }
            }
            chars.push(c);
        }
        assert!(!chars.is_empty(), "empty character class in {pattern:?}");
        (chars, lo, hi)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() as f32
        }
    }

    /// The full-domain strategy for `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive length range; built from `usize` or `Range`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Order-preserving random subsequence of a fixed pool.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        pool: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.pick(rng).min(self.pool.len());
            // Reservoir-free selection: walk the pool once, accepting each
            // element with probability (needed / remaining).
            let mut out = Vec::with_capacity(want);
            let mut needed = want;
            for (i, item) in self.pool.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = self.pool.len() - i;
                if rng.usize_in(0, remaining) < needed {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }

    pub fn subsequence<T: Clone>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategy arms (all arms must share a value type).
/// Upstream weight syntax (`w => strat`) is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition fails. Only valid inside a
/// `proptest!` body (expands to an early return from the case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

/// The `proptest! { ... }` block: an optional `#![proptest_config(..)]`
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` arrives inside `$meta` and is re-emitted verbatim.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(path, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| -> ::core::ops::ControlFlow<()> {
                        $body
                        ::core::ops::ControlFlow::Continue(())
                    }),
                );
                if let Err(payload) = run {
                    eprintln!("proptest case {case}/{} failed in {path}", config.cases);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![(0u32..10).prop_map(|v| v * 2), Just(99u32),];
        let mut rng = TestRng::for_case("union", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 20), "{v}");
        }
    }

    #[test]
    fn char_class_strings() {
        let strat = "[ -~\n]{0,40}";
        let mut rng = TestRng::for_case("chars", 1);
        for _ in 0..50 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(
                s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let strat = crate::sample::subsequence(vec![1usize, 2, 3, 4, 5], 0..=5);
        let mut rng = TestRng::for_case("subseq", 2);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, assume, and asserts all work.
        #[test]
        fn macro_roundtrip(n in 1usize..50, bits in any::<u64>(), flag in any::<bool>()) {
            prop_assume!(n != 13);
            let doubled = n * 2;
            prop_assert!(doubled >= 2);
            prop_assert_eq!(doubled / 2, n);
            let _ = (bits, flag);
        }
    }
}
